#ifndef SKEENA_SERVER_CLIENT_H_
#define SKEENA_SERVER_CLIENT_H_

// C++ client for the SKNA wire protocol (docs/PROTOCOL.md). Two layers:
//
//  * A synchronous convenience API (Connect / OpenTable / Begin / Exec /
//    Commit / ...) — one request frame out, block until its response is
//    in. Used by examples and simple tests.
//  * A raw pipelined API (Send* / RecvResponse / SendRaw) that lets the
//    caller keep many requests in flight on one connection; responses
//    come back strictly in request order (PROTOCOL.md "Pipelining").
//    Used by the open-loop tail-latency bench and the protocol tests.
//
// A Client drives exactly one connection and is not thread-safe; open one
// per connection (the server multiplexes them).

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "server/wire.h"

namespace skeena::server {

/// A response frame as received: header fields plus the raw body, with
/// the per-opcode decode left to the caller (the pipelined API cannot
/// know which request a response answers; the caller can, by order).
struct Response {
  uint64_t request_id = 0;
  Op op = Op::kProtoErr;
  std::string body;

  bool is_err() const { return op == Op::kTxnErr || op == Op::kProtoErr; }
  /// For is_err() frames: decoded code (kInvalid if the body is mangled).
  Err err_code() const;
  std::string err_message() const;
  /// Projects an error response (or a non-error one) onto Status.
  Status ToStatus() const;
};

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects and performs the HELLO handshake.
  Status Connect(const std::string& host, uint16_t port);
  void Close();
  bool connected() const { return fd_ >= 0; }
  /// Raw socket (for poll()-based open-loop drivers). -1 when closed.
  int fd() const { return fd_; }
  /// Protocol version negotiated by the handshake.
  uint8_t negotiated_version() const { return negotiated_version_; }

  // ------------------------------------------------------------- sync API

  /// Resolves a table name to this connection's table_token.
  Result<uint32_t> OpenTable(const std::string& name);
  Status Begin(IsolationLevel iso = IsolationLevel::kSnapshot,
               GlobalTxnId* gtid = nullptr);
  /// Executes one batched EXEC frame; results pair 1:1 with stmts.
  Result<std::vector<StmtResult>> Exec(const std::vector<Stmt>& stmts);
  Status Commit();
  Status Abort();
  Status Ping();

  // Single-statement conveniences over Exec().
  Status Get(uint32_t table, const Key& key, std::string* value,
             bool* found);
  Status Put(uint32_t table, const Key& key, std::string_view value);

  // -------------------------------------------------------- pipelined API
  // Send* enqueue a frame on the socket and return its request_id without
  // waiting. RecvResponse blocks for the next response in order.

  uint64_t SendBegin(IsolationLevel iso = IsolationLevel::kSnapshot);
  uint64_t SendExec(const std::vector<Stmt>& stmts);
  uint64_t SendCommit();
  uint64_t SendAbort();
  uint64_t SendPing();
  /// Writes arbitrary bytes to the socket (malformed-frame tests).
  Status SendRaw(std::string_view bytes);
  /// Blocks until one full response frame arrives (or the peer closes:
  /// IOError). Framing violations from the server would be bugs; they
  /// surface as Corruption.
  Status RecvResponse(Response* rsp);

 private:
  uint64_t next_request_id() { return next_request_id_++; }
  Status WriteAll(std::string_view bytes);
  /// Sync round-trip helper: sends `frame`, receives the response for it,
  /// and checks the opcode (error responses pass through for the caller).
  Status Call(std::string frame, Op expect, Response* rsp);

  int fd_ = -1;
  uint64_t next_request_id_ = 1;
  uint8_t negotiated_version_ = 0;
  std::string inbuf_;
};

}  // namespace skeena::server

#endif  // SKEENA_SERVER_CLIENT_H_
