#ifndef SKEENA_SERVER_WIRE_H_
#define SKEENA_SERVER_WIRE_H_

// Codec for the SKNA wire protocol, version 1. This file is the single
// implementation of docs/PROTOCOL.md: every constant, offset and bound
// below is specified there, and tests/server_test.cc pins the two against
// each other byte by byte.
//
// The codec is pure (no I/O, no Database types beyond Key/Status): the
// server and the client library share it, and the malformed-input corpus
// exercises it directly.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/encoding.h"
#include "common/status.h"
#include "common/types.h"

namespace skeena::server {

inline constexpr uint8_t kProtocolVersion = 1;
/// "SKNA", the handshake magic at frame offset 13 (PROTOCOL.md).
inline constexpr char kMagic[4] = {'S', 'K', 'N', 'A'};
/// Frame header: u32 len + u64 request_id + u8 opcode.
inline constexpr size_t kHeaderBytes = 13;
/// Bytes counted by the `len` field beyond the body: request_id + opcode.
inline constexpr uint32_t kLenOverhead = 9;
/// Hard cap on the `len` field (1 MiB).
inline constexpr uint32_t kMaxFrameLen = 1u << 20;
/// EXEC statement-count bounds.
inline constexpr uint16_t kMaxStatements = 4096;
/// OPEN_TABLE name-length bound.
inline constexpr uint16_t kMaxTableName = 256;

enum class Op : uint8_t {
  // requests
  kHello = 0x01,
  kOpenTable = 0x02,
  kBegin = 0x03,
  kExec = 0x04,
  kCommit = 0x05,
  kAbort = 0x06,
  kPing = 0x07,
  // replication (docs/REPLICATION.md): replica -> primary
  kReplHello = 0x11,
  kReplAck = 0x12,
  // responses
  kHelloOk = 0x81,
  kTableOk = 0x82,
  kBeginOk = 0x83,
  kExecOk = 0x84,
  kCommitOk = 0x85,
  kAbortOk = 0x86,
  kPong = 0x87,
  // replication: primary -> replica
  kReplHelloOk = 0x91,
  kReplLog = 0x92,
  kReplCsr = 0x93,
  kReplWatermark = 0x94,
  kTxnErr = 0xEE,
  kProtoErr = 0xEF,
};

/// PROTOCOL.md error-code table. 0..31 are request/statement-level
/// (TxnErr, statement status); 32+ are protocol-level (ProtoErr: the
/// server closes the connection after sending).
enum class Err : uint8_t {
  kOk = 0,
  kNotFound = 1,
  kAborted = 2,
  kSkeenaAbort = 3,
  kDeadlock = 4,
  kTimedOut = 5,
  kBusy = 6,
  kInvalid = 7,
  kIo = 8,
  kCorrupt = 9,
  kNotSupported = 10,
  kNoTxn = 11,
  kTxnOpen = 12,
  kBadMagic = 32,
  kBadVersion = 33,
  kBadFrame = 34,
  kBadOpcode = 35,
  kFrameTooBig = 36,
  kNotReady = 37,
};

const char* ErrName(Err e);

/// Projects a library Status onto the wire code table (codes 1..10).
Err ErrFromStatus(const Status& s);
/// Lifts a wire code back into a Status (client side).
Status ErrToStatus(Err e, std::string msg);
/// True for the retryable abort band (codes 2..5 == Status::IsAnyAbort).
inline bool ErrIsAbort(Err e) {
  return e >= Err::kAborted && e <= Err::kTimedOut;
}

/// One EXEC statement (PROTOCOL.md "Statement encoding").
struct Stmt {
  enum class Kind : uint8_t { kGet = 1, kPut = 2, kDelete = 3, kScan = 4 };
  Kind kind = Kind::kGet;
  uint32_t table = 0;  // table_token from TABLE_OK
  Key key = {};        // for kScan: inclusive lower bound
  std::string value;   // kPut only
  uint32_t scan_limit = 0;  // kScan only; 0 = unlimited

  static Stmt Get(uint32_t table, const Key& key);
  static Stmt Put(uint32_t table, const Key& key, std::string_view value);
  static Stmt Delete(uint32_t table, const Key& key);
  static Stmt Scan(uint32_t table, const Key& lower, uint32_t limit);
};

/// One EXEC_OK statement result (PROTOCOL.md "Statement result encoding").
/// The wire shape of a successful result depends on the statement kind it
/// answers (GET carries `found`, SCAN carries rows, PUT/DELETE nothing),
/// so the result records its kind and the decoder is handed the request's
/// kinds — responses pair 1:1 with requests in order, per the pipelining
/// rules.
struct StmtResult {
  Stmt::Kind kind = Stmt::Kind::kGet;
  Err status = Err::kOk;
  bool found = false;       // kGet
  std::string value;        // kGet, when found
  std::vector<std::pair<Key, std::string>> rows;  // kScan
};

/// A decoded frame: header fields + raw body. Body interpretation is the
/// per-opcode Decode*Body functions below.
struct Frame {
  uint64_t request_id = 0;
  uint8_t opcode = 0;
  std::string body;
};

// ------------------------------------------------------------- extraction

enum class ParseResult {
  kNeedMore,  // buffer holds no complete frame yet
  kFrame,     // *frame filled, *consumed advanced
  kError,     // framing violation; *err says which, *consumed untouched
};

/// Pulls the first complete frame out of `buf`. On kError the connection
/// must be failed with ProtoErr(*err): `len` bounds violations poison the
/// stream (the parser cannot resynchronize). `*request_id_hint` carries
/// the offender's request id when at least the header was readable (0
/// otherwise) so the error frame can be correlated.
ParseResult ExtractFrame(std::string_view buf, size_t* consumed, Frame* frame,
                         Err* err, uint64_t* request_id_hint);

// --------------------------------------------------------------- encoding
// Each builder returns one complete frame, header included.

std::string EncodeHello(uint64_t request_id,
                        uint8_t version = kProtocolVersion);
std::string EncodeOpenTable(uint64_t request_id, std::string_view name);
std::string EncodeBegin(uint64_t request_id, IsolationLevel iso);
std::string EncodeExec(uint64_t request_id, const std::vector<Stmt>& stmts);
std::string EncodeCommit(uint64_t request_id);
std::string EncodeAbort(uint64_t request_id);
std::string EncodePing(uint64_t request_id);

std::string EncodeHelloOk(uint64_t request_id, uint8_t version,
                          uint8_t flags = 0);
std::string EncodeTableOk(uint64_t request_id, uint32_t table_token,
                          EngineKind engine);
std::string EncodeBeginOk(uint64_t request_id, GlobalTxnId gtid);
std::string EncodeExecOk(uint64_t request_id,
                         const std::vector<StmtResult>& results);
std::string EncodeCommitOk(uint64_t request_id);
std::string EncodeAbortOk(uint64_t request_id);
std::string EncodePong(uint64_t request_id);
std::string EncodeErr(uint64_t request_id, Op op, Err code,
                      std::string_view msg);

// --------------------------------------------------------------- decoding
// Body decoders return false on malformed input (the caller responds
// ERR_BAD_FRAME — or the specific handshake code for DecodeHelloBody).

/// Validates magic + version; *err is kBadMagic / kBadVersion / kBadFrame.
bool DecodeHelloBody(std::string_view body, uint8_t* version, Err* err);
bool DecodeOpenTableBody(std::string_view body, std::string* name);
bool DecodeBeginBody(std::string_view body, IsolationLevel* iso);
bool DecodeExecBody(std::string_view body, std::vector<Stmt>* stmts);

bool DecodeHelloOkBody(std::string_view body, uint8_t* version,
                       uint8_t* flags);
bool DecodeTableOkBody(std::string_view body, uint32_t* table_token,
                       EngineKind* engine);
bool DecodeBeginOkBody(std::string_view body, GlobalTxnId* gtid);
/// `kinds` are the statement kinds of the EXEC this frame answers, in
/// order; the result count on the wire must match kinds.size().
bool DecodeExecOkBody(std::string_view body,
                      const std::vector<Stmt::Kind>& kinds,
                      std::vector<StmtResult>* results);
bool DecodeErrBody(std::string_view body, Err* code, std::string* msg);

// ------------------------------------------------------------- replication
// The replication channel reuses the SKNA frame header + extraction; these
// are the REPL_* opcode bodies (docs/REPLICATION.md). The channel is a
// single ordered byte stream, so the stream position of each frame is the
// resume cursor: REPL_HELLO names where the replica wants each stream to
// restart and the shipper re-ships from exactly there.

/// REPL_HELLO (replica -> primary): resume cursors. Log cursors are
/// frame-aligned byte offsets into each engine's WAL; csr_seq counts CSR
/// install-journal entries already received.
struct ReplHello {
  uint8_t version = kProtocolVersion;
  Lsn mem_lsn = 0;
  Lsn stor_lsn = 0;
  uint64_t csr_seq = 0;
};

/// REPL_LOG (primary -> replica): a batch of whole WAL frames from one
/// engine's log covering device bytes [start_lsn, end_lsn). `records` are
/// the frame payloads (encoded LogRecords) in log order, re-framed as
/// [u32 len][bytes] so the replica never re-parses device framing.
struct ReplLogBatch {
  uint8_t engine = 0;
  Lsn start_lsn = 0;
  Lsn end_lsn = 0;
  std::vector<std::string> records;
};

/// REPL_CSR (primary -> replica): CSR install-journal entries
/// [first_seq, first_seq + entries.size()), each an (anchor key, other
/// engine value) install in primary install order.
struct ReplCsrBatch {
  uint64_t first_seq = 0;
  std::vector<std::pair<Timestamp, Timestamp>> entries;
};

/// REPL_WATERMARK (primary -> replica): commit horizons. Every commit with
/// mem cts <= mem_horizon (resp. stor ser <= stor_horizon) has all of its
/// log records in the bytes already shipped, and every CSR install by a
/// cross-engine commit below either horizon appears in journal entries
/// < csr_seq. The replica applies up to the horizons, then recomputes its
/// visibility gate (docs/REPLICATION.md "Visibility gating").
struct ReplWatermark {
  Timestamp mem_horizon = 0;
  Timestamp stor_horizon = 0;
  uint64_t csr_seq = 0;
};

/// REPL_ACK (replica -> primary): received-and-buffered stream positions
/// after applying a watermark; informational (the primary keeps no
/// per-replica durable state — resume is replica-driven via REPL_HELLO).
struct ReplAck {
  Lsn mem_lsn = 0;
  Lsn stor_lsn = 0;
  uint64_t csr_seq = 0;
};

std::string EncodeReplHello(uint64_t request_id, const ReplHello& h);
std::string EncodeReplHelloOk(uint64_t request_id, uint8_t version);
std::string EncodeReplLog(uint64_t request_id, const ReplLogBatch& b);
std::string EncodeReplCsr(uint64_t request_id, const ReplCsrBatch& b);
std::string EncodeReplWatermark(uint64_t request_id, const ReplWatermark& w);
std::string EncodeReplAck(uint64_t request_id, const ReplAck& a);

bool DecodeReplHelloBody(std::string_view body, ReplHello* h);
bool DecodeReplHelloOkBody(std::string_view body, uint8_t* version);
bool DecodeReplLogBody(std::string_view body, ReplLogBatch* b);
bool DecodeReplCsrBody(std::string_view body, ReplCsrBatch* b);
bool DecodeReplWatermarkBody(std::string_view body, ReplWatermark* w);
bool DecodeReplAckBody(std::string_view body, ReplAck* a);

}  // namespace skeena::server

#endif  // SKEENA_SERVER_WIRE_H_
