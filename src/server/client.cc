#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace skeena::server {

Err Response::err_code() const {
  Err code;
  std::string msg;
  if (!DecodeErrBody(body, &code, &msg)) return Err::kInvalid;
  return code;
}

std::string Response::err_message() const {
  Err code;
  std::string msg;
  if (!DecodeErrBody(body, &code, &msg)) return "mangled error body";
  return msg;
}

Status Response::ToStatus() const {
  if (!is_err()) return Status::OK();
  return ErrToStatus(err_code(), err_message());
}

Client::~Client() { Close(); }

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  inbuf_.clear();
  negotiated_version_ = 0;
}

Status Client::Connect(const std::string& host, uint16_t port) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) return Status::IOError("socket: " + std::string(strerror(errno)));
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("bad host: " + host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s = Status::IOError("connect: " + std::string(strerror(errno)));
    Close();
    return s;
  }
  // Handshake.
  Response rsp;
  Status s = Call(EncodeHello(next_request_id()), Op::kHelloOk, &rsp);
  if (!s.ok()) {
    Close();
    return s;
  }
  uint8_t flags;
  if (!DecodeHelloOkBody(rsp.body, &negotiated_version_, &flags)) {
    Close();
    return Status::Corruption("mangled HELLO_OK");
  }
  return Status::OK();
}

Status Client::WriteAll(std::string_view bytes) {
  if (fd_ < 0) return Status::InvalidArgument("not connected");
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                       MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Status::IOError("send: " + std::string(strerror(errno)));
  }
  return Status::OK();
}

Status Client::RecvResponse(Response* rsp) {
  if (fd_ < 0) return Status::InvalidArgument("not connected");
  for (;;) {
    size_t consumed = 0;
    Frame f;
    Err err;
    uint64_t hint;
    ParseResult r = ExtractFrame(inbuf_, &consumed, &f, &err, &hint);
    if (r == ParseResult::kFrame) {
      inbuf_.erase(0, consumed);
      rsp->request_id = f.request_id;
      rsp->op = static_cast<Op>(f.opcode);
      rsp->body = std::move(f.body);
      return Status::OK();
    }
    if (r == ParseResult::kError) {
      return Status::Corruption(std::string("server framing violation: ") +
                                ErrName(err));
    }
    char buf[16384];
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      inbuf_.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n == 0) return Status::IOError("connection closed by server");
    return Status::IOError("recv: " + std::string(strerror(errno)));
  }
}

Status Client::Call(std::string frame, Op expect, Response* rsp) {
  SKEENA_RETURN_NOT_OK(WriteAll(frame));
  SKEENA_RETURN_NOT_OK(RecvResponse(rsp));
  if (rsp->is_err()) return rsp->ToStatus();
  if (rsp->op != expect) {
    return Status::Corruption("unexpected response opcode");
  }
  return Status::OK();
}

Result<uint32_t> Client::OpenTable(const std::string& name) {
  Response rsp;
  SKEENA_RETURN_NOT_OK(Call(EncodeOpenTable(next_request_id(), name),
                            Op::kTableOk, &rsp));
  uint32_t token;
  EngineKind engine;
  if (!DecodeTableOkBody(rsp.body, &token, &engine)) {
    return Status::Corruption("mangled TABLE_OK");
  }
  return token;
}

Status Client::Begin(IsolationLevel iso, GlobalTxnId* gtid) {
  Response rsp;
  SKEENA_RETURN_NOT_OK(
      Call(EncodeBegin(next_request_id(), iso), Op::kBeginOk, &rsp));
  GlobalTxnId g;
  if (!DecodeBeginOkBody(rsp.body, &g)) {
    return Status::Corruption("mangled BEGIN_OK");
  }
  if (gtid != nullptr) *gtid = g;
  return Status::OK();
}

Result<std::vector<StmtResult>> Client::Exec(const std::vector<Stmt>& stmts) {
  Response rsp;
  SKEENA_RETURN_NOT_OK(
      Call(EncodeExec(next_request_id(), stmts), Op::kExecOk, &rsp));
  std::vector<Stmt::Kind> kinds;
  kinds.reserve(stmts.size());
  for (const Stmt& s : stmts) kinds.push_back(s.kind);
  std::vector<StmtResult> results;
  if (!DecodeExecOkBody(rsp.body, kinds, &results)) {
    return Status::Corruption("mangled EXEC_OK");
  }
  return results;
}

Status Client::Commit() {
  Response rsp;
  return Call(EncodeCommit(next_request_id()), Op::kCommitOk, &rsp);
}

Status Client::Abort() {
  Response rsp;
  return Call(EncodeAbort(next_request_id()), Op::kAbortOk, &rsp);
}

Status Client::Ping() {
  Response rsp;
  return Call(EncodePing(next_request_id()), Op::kPong, &rsp);
}

Status Client::Get(uint32_t table, const Key& key, std::string* value,
                   bool* found) {
  auto results = Exec({Stmt::Get(table, key)});
  if (!results.ok()) return results.status();
  const StmtResult& r = (*results)[0];
  if (r.status != Err::kOk) return ErrToStatus(r.status, "GET failed");
  *found = r.found;
  if (r.found && value != nullptr) *value = r.value;
  return Status::OK();
}

Status Client::Put(uint32_t table, const Key& key, std::string_view value) {
  auto results = Exec({Stmt::Put(table, key, value)});
  if (!results.ok()) return results.status();
  const StmtResult& r = (*results)[0];
  if (r.status != Err::kOk) return ErrToStatus(r.status, "PUT failed");
  return Status::OK();
}

uint64_t Client::SendBegin(IsolationLevel iso) {
  uint64_t rid = next_request_id();
  WriteAll(EncodeBegin(rid, iso));
  return rid;
}

uint64_t Client::SendExec(const std::vector<Stmt>& stmts) {
  uint64_t rid = next_request_id();
  WriteAll(EncodeExec(rid, stmts));
  return rid;
}

uint64_t Client::SendCommit() {
  uint64_t rid = next_request_id();
  WriteAll(EncodeCommit(rid));
  return rid;
}

uint64_t Client::SendAbort() {
  uint64_t rid = next_request_id();
  WriteAll(EncodeAbort(rid));
  return rid;
}

uint64_t Client::SendPing() {
  uint64_t rid = next_request_id();
  WriteAll(EncodePing(rid));
  return rid;
}

Status Client::SendRaw(std::string_view bytes) { return WriteAll(bytes); }

}  // namespace skeena::server
