#include "memdb/mem_engine.h"

#include <algorithm>
#include <cassert>
#include <map>

#include "common/spin_latch.h"
#include "log/log_records.h"

namespace skeena::memdb {

MemEngine::MemEngine(std::unique_ptr<StorageDevice> log_device,
                     Options options, EpochManager* epoch)
    : options_(options), active_(options.max_concurrent_txns) {
  if (epoch == nullptr) {
    owned_epoch_ = std::make_unique<EpochManager>();
    epoch_ = owned_epoch_.get();
  } else {
    epoch_ = epoch;
  }
  if (options_.enable_logging) {
    log_ = std::make_unique<LogManager>(std::move(log_device), options_.log);
  }
}

MemEngine::~MemEngine() = default;

TableId MemEngine::CreateTable(const std::string& name) {
  MutexLock guard(tables_mu_);
  TableId id = static_cast<TableId>(tables_.size());
  tables_.push_back(std::make_unique<MemTable>(id, name));
  return id;
}

MemTable* MemEngine::GetTable(TableId id) const {
  MutexLock guard(tables_mu_);
  if (id >= tables_.size()) return nullptr;
  return tables_[id].get();
}

MemTable* MemEngine::GetTableByName(const std::string& name) const {
  MutexLock guard(tables_mu_);
  for (const auto& t : tables_) {
    if (t->name() == name) return t.get();
  }
  return nullptr;
}

std::unique_ptr<MemTxn> MemEngine::Begin(IsolationLevel iso,
                                         Timestamp snapshot) {
  // kMaxTimestamp means "latest" like kInvalidTimestamp (the adapter's
  // convention); it must never reach the registry, where it is the
  // acquiring sentinel.
  bool pinned =
      snapshot != kInvalidTimestamp && snapshot != kMaxTimestamp;
  // A pinned (coordinator-chosen) snapshot below the GC floor cannot be
  // served: versions it needs may already be unlinked. The floor cannot
  // move past a snapshot the CSR could still select (the coordinator's
  // GC-horizon provider bounds every floor advance), so this check only
  // fires for snapshots that were stale at selection time — no
  // register-then-validate ordering is needed.
  if (pinned && snapshot < gc_floor_.load(std::memory_order_seq_cst)) {
    return nullptr;
  }
  size_t slot = active_.Acquire();
  active_.BeginAcquire(slot);
  if (!pinned) {
    snapshot = LatestSnapshot();
  }
  active_.SetSnapshot(slot, snapshot);
  return std::make_unique<MemTxn>(snapshot, iso, slot);
}

Status MemEngine::RefreshSnapshot(MemTxn* txn, Timestamp snapshot) {
  // Same kMaxTimestamp-means-latest convention as Begin.
  bool pinned =
      snapshot != kInvalidTimestamp && snapshot != kMaxTimestamp;
  // Same floor check as Begin; on failure the slot keeps its previous
  // registration (conservatively holding the floor down) until the caller
  // aborts the transaction.
  if (pinned && snapshot < gc_floor_.load(std::memory_order_seq_cst)) {
    return Status::SkeenaAbort("refresh snapshot predates GC floor");
  }
  active_.BeginAcquire(txn->registry_slot());
  txn->begin_ts_ = pinned ? snapshot : LatestSnapshot();
  active_.SetSnapshot(txn->registry_slot(), txn->begin_ts_);
  return Status::OK();
}

Version* MemEngine::ReadVisible(Record* rec, Timestamp snapshot) const {
  // Caller must hold an EpochGuard on epoch(): the chain is pruned
  // concurrently (unlink + Retire), and the pin is what keeps an unlinked
  // version mapped while we may still be walking through it.
  //
  // A committer that drew a commit timestamp <= snapshot necessarily held
  // the record latch before our snapshot was read; wait out any in-flight
  // install so the chain we traverse includes its version.
  while (rec->latch.is_locked()) CpuRelax();
  Version* v = rec->head.load(std::memory_order_acquire);
  while (v != nullptr && v->cts > snapshot) v = v->next;
  return v;
}

Status MemEngine::Get(MemTxn* txn, TableId table, const Key& key,
                      std::string* value) {
  MemTable* t = GetTable(table);
  if (t == nullptr) return Status::InvalidArgument("no such table");
  Record* rec = t->Find(key);
  if (rec == nullptr) return Status::NotFound();

  // Own buffered write wins.
  size_t w = txn->FindWrite(rec);
  if (w != MemTxn::kNone) {
    const auto& entry = txn->writes()[w];
    if (entry.tombstone) return Status::NotFound();
    *value = entry.value;
    return Status::OK();
  }

  // Pin for the chain walk AND the value copy: `v` may be unlinked by a
  // concurrent committer the moment the walk returns, and only the pin
  // keeps it out of the epoch limbo's free set until we are done with it.
  EpochGuard guard(*epoch_);
  Version* v = ReadVisible(rec, txn->begin_ts());
  if (txn->isolation() == IsolationLevel::kSerializable) {
    txn->AddRead(rec, rec->head.load(std::memory_order_acquire));
  }
  if (v == nullptr || v->tombstone) return Status::NotFound();
  *value = v->value;
  return Status::OK();
}

Status MemEngine::Put(MemTxn* txn, TableId table, const Key& key,
                      std::string_view value) {
  MemTable* t = GetTable(table);
  if (t == nullptr) return Status::InvalidArgument("no such table");
  Record* rec = t->FindOrCreate(key);
  // Early write-conflict detection (the authoritative first-committer-wins
  // check re-runs at pre-commit): only update records whose latest committed
  // version is visible.
  Version* head = rec->head.load(std::memory_order_acquire);
  if (head != nullptr && head->cts > txn->begin_ts()) {
    Abort(txn);
    return Status::Aborted("write-write conflict");
  }
  txn->AddWrite(rec, table, key, std::string(value), /*tombstone=*/false);
  return Status::OK();
}

Status MemEngine::Delete(MemTxn* txn, TableId table, const Key& key) {
  MemTable* t = GetTable(table);
  if (t == nullptr) return Status::InvalidArgument("no such table");
  Record* rec = t->Find(key);
  if (rec == nullptr) return Status::NotFound();
  Version* head = rec->head.load(std::memory_order_acquire);
  if (head != nullptr && head->cts > txn->begin_ts()) {
    Abort(txn);
    return Status::Aborted("write-write conflict");
  }
  txn->AddWrite(rec, table, key, std::string(), /*tombstone=*/true);
  return Status::OK();
}

Status MemEngine::Scan(
    MemTxn* txn, TableId table, const Key& lower, size_t limit,
    const std::function<bool(const Key&, const std::string&)>& cb) {
  MemTable* t = GetTable(table);
  if (t == nullptr) return Status::InvalidArgument("no such table");
  size_t delivered = 0;
  t->index().ScanFrom(lower, [&](const Key& key, uint64_t value) {
    Record* rec = reinterpret_cast<Record*>(value);
    size_t w = txn->FindWrite(rec);
    if (w != MemTxn::kNone) {
      const auto& entry = txn->writes()[w];
      if (entry.tombstone) return true;
      delivered++;
      if (!cb(key, entry.value)) return false;
      return limit == 0 || delivered < limit;
    }
    // Pin per row, and copy the value out before invoking the (possibly
    // blocking) user callback — an EpochGuard must never be held across a
    // wait we do not control.
    std::string row;
    {
      EpochGuard guard(*epoch_);
      Version* v = ReadVisible(rec, txn->begin_ts());
      if (txn->isolation() == IsolationLevel::kSerializable) {
        txn->AddRead(rec, rec->head.load(std::memory_order_acquire));
      }
      if (v == nullptr || v->tombstone) return true;
      row = v->value;
    }
    delivered++;
    if (!cb(key, row)) return false;
    return limit == 0 || delivered < limit;
  });
  return Status::OK();
}

void MemEngine::LatchWriteSet(MemTxn* txn) {
  // Latch in address order so concurrent committers cannot deadlock.
  auto& writes = txn->writes();
  std::vector<Record*> recs;
  recs.reserve(writes.size());
  for (const auto& w : writes) recs.push_back(w.rec);
  std::sort(recs.begin(), recs.end());
  for (Record* r : recs) r->latch.lock();
  txn->latched_ = true;
}

void MemEngine::UnlatchWriteSet(MemTxn* txn) {
  if (!txn->latched_) return;
  for (const auto& w : txn->writes()) w.rec->latch.unlock();
  txn->latched_ = false;
}

Status MemEngine::PreCommit(MemTxn* txn, GlobalTxnId gtid,
                            bool cross_engine) {
  assert(txn->state_ == MemTxn::State::kActive);

  if (txn->read_only()) {
    // Reads-still-current validation gives read-only serializable
    // transactions a serial point at commit.
    if (txn->isolation() == IsolationLevel::kSerializable) {
      for (const auto& r : txn->reads()) {
        if (r.rec->head.load(std::memory_order_acquire) != r.observed_head) {
          Abort(txn);
          return Status::Aborted("serializability validation failed");
        }
      }
    }
    txn->commit_ts_ = txn->begin_ts();
    txn->state_ = MemTxn::State::kPreCommitted;
    return Status::OK();
  }

  LatchWriteSet(txn);
  // Enter the committing window *before* drawing the commit timestamp:
  // ReplicationHorizon()'s registry scan waits out the sentinel, so every
  // commit with cts <= a sampled horizon has already left the window —
  // i.e. finished its last log append. Registered until PostCommit/Abort.
  txn->committing_slot_ = committing_.Acquire();
  committing_.BeginAcquire(txn->committing_slot_);
  txn->commit_ts_ = clock_.fetch_add(1, std::memory_order_seq_cst) + 1;
  committing_.SetSnapshot(txn->committing_slot_, txn->commit_ts_);

  // First-committer-wins: the latest committed version of every written
  // record must be visible in our snapshot.
  for (const auto& w : txn->writes()) {
    Version* head = w.rec->head.load(std::memory_order_acquire);
    if (head != nullptr && head->cts > txn->begin_ts()) {
      UnlatchWriteSet(txn);
      Abort(txn);
      return Status::Aborted("write-write conflict");
    }
  }

  // OCC read validation: forbids anti-dependencies against transactions
  // that committed after us, which yields the commit-ordering property
  // Skeena's serializability argument needs (paper Section 4.7).
  if (txn->isolation() == IsolationLevel::kSerializable) {
    for (const auto& r : txn->reads()) {
      bool own = txn->FindWrite(r.rec) != MemTxn::kNone;
      if (!own && r.rec->latch.is_locked()) {
        UnlatchWriteSet(txn);
        Abort(txn);
        return Status::Aborted("read validation: concurrent committer");
      }
      if (r.rec->head.load(std::memory_order_acquire) != r.observed_head) {
        UnlatchWriteSet(txn);
        Abort(txn);
        return Status::Aborted("read validation: version changed");
      }
    }
  }

  // Cross-engine pre-commits append only the (small) commit-begin record
  // (Section 4.6); write images are logged at post-commit. This keeps the
  // window between the two engines' commit-timestamp assignments — during
  // which a concurrent committer can interleave and force a commit-check
  // abort — as short as possible.
  if (log_ != nullptr && cross_engine) {
    LogRecord begin;
    begin.type = LogRecordType::kCommitBegin;
    begin.gtid = gtid;
    begin.cts = txn->commit_ts_;
    std::string encoded = begin.Encode();
    log_->Append(std::span<const uint8_t>(
        reinterpret_cast<const uint8_t*>(encoded.data()), encoded.size()));
  }

  txn->state_ = MemTxn::State::kPreCommitted;
  return Status::OK();
}

namespace {
// Typed deleter for a whole unlinked version sub-chain: one limbo entry
// per prune instead of one per version.
void DeleteVersionChain(void* p) {
  auto* v = static_cast<Version*>(p);
  while (v != nullptr) {
    Version* next = v->next;
    delete v;
    v = next;
  }
}
}  // namespace

Lsn MemEngine::PostCommit(MemTxn* txn, GlobalTxnId gtid, bool cross_engine) {
  assert(txn->state_ == MemTxn::State::kPreCommitted);

  // One floor load per commit; the floor only grows, so a stale value is
  // merely conservative (prunes less).
  Timestamp floor = gc_floor_.load(std::memory_order_acquire);
  if (!txn->read_only()) {
    // Log the write images (before the commit record, same log: recovery
    // sees data before commit in FIFO order).
    if (log_ != nullptr) {
      LogRecord rec;
      for (const auto& w : txn->writes()) {
        rec.type = LogRecordType::kData;
        rec.gtid = gtid;
        rec.cts = txn->commit_ts_;
        rec.table = w.table;
        rec.tombstone = w.tombstone;
        rec.key = w.key;
        rec.value = w.value;
        std::string encoded = rec.Encode();
        log_->Append(std::span<const uint8_t>(
            reinterpret_cast<const uint8_t*>(encoded.data()),
            encoded.size()));
      }
    }
    // Unlink prunable sub-chains while latched (the cut must be ordered
    // against other installs on the record), but retire them only after
    // the latches drop: RetireRaw drives TryAdvance, which can run every
    // ripe deleter in the shared domain — arbitrary work that must not
    // run while readers spin on this transaction's record latches.
    std::vector<Version*> garbage;
    for (auto& w : txn->writes()) {
      // relaxed-ok: the record latch is held; its release publishes the
      // new head together with everything it links to.
      auto* v = new Version{txn->commit_ts_,
                            w.rec->head.load(std::memory_order_relaxed),
                            w.tombstone, std::move(w.value)};
      w.rec->head.store(v, std::memory_order_release);
      if (Version* g = PruneVersions(v, floor)) garbage.push_back(g);
    }
    UnlatchWriteSet(txn);
    for (Version* g : garbage) epoch_->RetireRaw(g, &DeleteVersionChain);
  }

  Lsn lsn = 0;
  if (log_ != nullptr &&
      (!txn->read_only() || cross_engine || options_.log_read_only_commits)) {
    LogRecord rec;
    rec.type =
        cross_engine ? LogRecordType::kCommitEnd : LogRecordType::kCommit;
    rec.gtid = gtid;
    rec.cts = txn->commit_ts_;
    std::string encoded = rec.Encode();
    lsn = log_->Append(std::span<const uint8_t>(
        reinterpret_cast<const uint8_t*>(encoded.data()), encoded.size()));
  }

  // Leave the committing window only after the last log append: the
  // replication horizon must not pass this cts while records are pending.
  if (txn->committing_slot_ != MemTxn::kNone) {
    committing_.Release(txn->committing_slot_);
    txn->committing_slot_ = MemTxn::kNone;
  }
  txn->state_ = MemTxn::State::kCommitted;
  active_.Release(txn->registry_slot());
  MaybeAdvanceGcFloor(commit_count_.Increment());
  return lsn;
}

void MemEngine::Abort(MemTxn* txn) {
  if (txn->state_ == MemTxn::State::kCommitted ||
      txn->state_ == MemTxn::State::kAborted) {
    return;
  }
  UnlatchWriteSet(txn);
  if (txn->committing_slot_ != MemTxn::kNone) {
    committing_.Release(txn->committing_slot_);
    txn->committing_slot_ = MemTxn::kNone;
  }
  txn->state_ = MemTxn::State::kAborted;
  active_.Release(txn->registry_slot());
  abort_count_.Add(1);
}

Version* MemEngine::PruneVersions(Version* new_head, Timestamp floor) {
  // Keep the newest version with cts <= floor (the version the oldest
  // active snapshot resolves to); everything strictly older is unreachable
  // to every current and future snapshot. Unlink the sub-chain (no new
  // reader can find it) and hand it back for the caller to retire through
  // the shared epoch domain once it drops the record latches — readers
  // already inside the chain hold an EpochGuard, so the memory stays
  // mapped until they unpin.
  Version* keep = new_head;
  while (keep != nullptr && keep->cts > floor) keep = keep->next;
  if (keep == nullptr) return nullptr;
  Version* garbage = keep->next;
  if (garbage == nullptr) return nullptr;
  keep->next = nullptr;
  uint64_t n = 0;
  for (Version* v = garbage; v != nullptr; v = v->next) n++;
  pruned_count_.Add(n);
  return garbage;
}

void MemEngine::MaybeAdvanceGcFloor(uint64_t thread_commits) {
  if (options_.gc_interval == 0 ||
      thread_commits % options_.gc_interval != 0) {
    return;
  }
  // Explicit TryLock so TSA tracks the branch (see thread_annotations.h).
  if (!gc_round_mu_.TryLock()) return;  // another committer is advancing
  // One exact registry scan (MinActive waits out in-flight registrations)
  // plus the coordinator's bound on what the CSR could still select. Both
  // are lower bounds on every live and future snapshot, so their min is
  // safe to prune with AND to validate pinned begins against — one floor,
  // no published/apply split. The try-lock only dedups concurrent scans
  // (committers crossing the interval together); it carries no floor
  // protocol, and CAS-max keeps the advance idempotent regardless.
  Timestamp m = MinActiveSnapshot();
  if (gc_horizon_provider_) m = std::min(m, gc_horizon_provider_());
  AtomicFetchMax(gc_floor_, m, std::memory_order_seq_cst);
  // Retired chains pile up between commits; nudge the epoch so limbo
  // drains even when nothing else drives TryAdvance.
  epoch_->TryAdvance();
  gc_round_mu_.Unlock();
}

MemEngine::Stats MemEngine::stats() const {
  Stats s;
  s.commits = commit_count_.Read();
  s.aborts = abort_count_.Read();
  s.versions_pruned = pruned_count_.Read();
  return s;
}

Timestamp MemEngine::ReplicationHorizon() const {
  // Fallback clock+1, read before the scan: with no committer in the
  // window every drawn cts has finished appending, so the horizon is the
  // clock itself. A committer that enters after the scan draws its cts
  // from a later fetch-add, i.e. strictly above the value we return.
  Timestamp clock = clock_.load(std::memory_order_seq_cst);
  return committing_.MinActive(clock + 1) - 1;
}

Status MemEngine::ApplyReplicated(GlobalTxnId gtid, Timestamp cts,
                                  const std::vector<LogRecord>& records) {
  // Resolve target records first, deduplicating by record (the spin latch
  // is not reentrant); the last image wins, matching the primary's
  // write-set semantics.
  struct Pending {
    Record* rec;
    const LogRecord* r;
  };
  std::vector<Pending> pend;
  pend.reserve(records.size());
  for (const LogRecord& r : records) {
    MemTable* t = GetTable(r.table);
    if (t == nullptr) {
      return Status::Corruption("replicated record references unknown table");
    }
    Record* rec = t->FindOrCreate(r.key);
    bool dup = false;
    for (auto& p : pend) {
      if (p.rec == rec) {
        p.r = &r;
        dup = true;
        break;
      }
    }
    if (!dup) pend.push_back(Pending{rec, &r});
  }

  // Re-log locally (data before commit, like a primary post-commit) so the
  // replica's own WAL recovers to the same state.
  if (log_ != nullptr) {
    LogRecord out;
    for (const Pending& p : pend) {
      out = *p.r;
      out.type = LogRecordType::kData;
      out.gtid = gtid;
      out.cts = cts;
      std::string encoded = out.Encode();
      log_->Append(std::span<const uint8_t>(
          reinterpret_cast<const uint8_t*>(encoded.data()), encoded.size()));
    }
    LogRecord commit;
    commit.type = LogRecordType::kCommit;
    commit.gtid = gtid;
    commit.cts = cts;
    std::string encoded = commit.Encode();
    log_->Append(std::span<const uint8_t>(
        reinterpret_cast<const uint8_t*>(encoded.data()), encoded.size()));
  }

  // Install under the record latches: replica readers run concurrently and
  // ReadVisible's wait-out-the-latch handshake is what orders their chain
  // walk against this install.
  std::vector<Record*> recs;
  recs.reserve(pend.size());
  for (const Pending& p : pend) recs.push_back(p.rec);
  std::sort(recs.begin(), recs.end());
  for (Record* r : recs) r->latch.lock();

  Timestamp floor = gc_floor_.load(std::memory_order_acquire);
  std::vector<Version*> garbage;
  for (const Pending& p : pend) {
    // relaxed-ok: the record latch is held (see CommitInternal).
    auto* v = new Version{cts, p.rec->head.load(std::memory_order_relaxed),
                          p.r->tombstone, p.r->value};
    p.rec->head.store(v, std::memory_order_release);
    if (Version* g = PruneVersions(v, floor)) garbage.push_back(g);
  }
  for (Record* r : recs) r->latch.unlock();
  for (Version* g : garbage) epoch_->RetireRaw(g, &DeleteVersionChain);

  AtomicFetchMax(clock_, cts, std::memory_order_seq_cst);
  MaybeAdvanceGcFloor(commit_count_.Increment());
  return Status::OK();
}

Status MemEngine::Recover(const std::set<GlobalTxnId>& excluded) {
  if (log_ == nullptr) return Status::OK();

  struct TxnBuf {
    std::vector<LogRecord> data;
    bool committed = false;
    Timestamp cts = 0;
  };
  std::map<GlobalTxnId, TxnBuf> txns;

  LogReader reader(log_->device());
  std::string raw;
  while (reader.Next(&raw)) {
    LogRecord rec;
    if (!LogRecord::Decode(raw, &rec)) {
      return Status::Corruption("bad memdb log record");
    }
    switch (rec.type) {
      case LogRecordType::kData:
        txns[rec.gtid].data.push_back(std::move(rec));
        break;
      case LogRecordType::kCommit:
        txns[rec.gtid].committed = true;
        txns[rec.gtid].cts = rec.cts;
        break;
      case LogRecordType::kCommitBegin:
        break;
      case LogRecordType::kCommitEnd:
        if (excluded.count(rec.gtid) == 0) {
          txns[rec.gtid].committed = true;
          txns[rec.gtid].cts = rec.cts;
        }
        break;
    }
  }

  // Apply committed transactions in commit-timestamp order so version
  // chains rebuild newest-first.
  std::vector<const TxnBuf*> committed;
  for (const auto& [gtid, buf] : txns) {
    if (buf.committed && !buf.data.empty()) committed.push_back(&buf);
  }
  std::sort(committed.begin(), committed.end(),
            [](const TxnBuf* a, const TxnBuf* b) { return a->cts < b->cts; });

  Timestamp max_cts = 1;
  for (const TxnBuf* buf : committed) {
    for (const LogRecord& rec : buf->data) {
      MemTable* t = GetTable(rec.table);
      if (t == nullptr) {
        return Status::Corruption("memdb log references unknown table");
      }
      Record* r = t->FindOrCreate(rec.key);
      // relaxed-ok: single-threaded recovery replay; no concurrent reads.
      auto* v = new Version{buf->cts, r->head.load(std::memory_order_relaxed),
                            rec.tombstone, rec.value};
      r->head.store(v, std::memory_order_release);
    }
    max_cts = std::max(max_cts, buf->cts);
  }
  clock_.store(max_cts, std::memory_order_release);
  gc_floor_.store(max_cts, std::memory_order_release);
  return Status::OK();
}

}  // namespace skeena::memdb
