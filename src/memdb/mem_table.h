#ifndef SKEENA_MEMDB_MEM_TABLE_H_
#define SKEENA_MEMDB_MEM_TABLE_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/encoding.h"
#include "common/spin_latch.h"
#include "common/types.h"
#include "index/btree.h"

namespace skeena::memdb {

/// One committed (or being-installed) row version. Versions form a singly
/// linked list ordered newest-first by commit timestamp — the totally
/// ordered version sequence of the paper's database model (Section 2.2).
/// Deletes append a tombstone ("invalid") version.
struct Version {
  Timestamp cts;
  Version* next;
  bool tombstone;
  std::string value;
};

/// Per-key container. `latch` is held only while a committer installs the
/// key's new version (a handful of instructions); readers whose snapshot
/// might cover an in-flight commit spin on it, which is what makes a
/// snapshot read (`clock.load()`) linearizable against commits (`clock`
/// fetch-add happens after the latch is taken).
struct Record {
  SpinLatch latch;
  std::atomic<Version*> head{nullptr};
};

/// A memdb table: a B+-tree index from key to Record. Records are never
/// physically removed during a table's lifetime (deletion is a tombstone
/// version); obsolete versions are pruned once no active transaction can
/// see them.
class MemTable {
 public:
  MemTable(TableId id, std::string name)
      : id_(id), name_(std::move(name)) {}
  ~MemTable();

  MemTable(const MemTable&) = delete;
  MemTable& operator=(const MemTable&) = delete;

  TableId id() const { return id_; }
  const std::string& name() const { return name_; }
  BTree& index() { return index_; }
  const BTree& index() const { return index_; }

  /// Finds the record for `key`, or nullptr.
  Record* Find(const Key& key) const;

  /// Finds or atomically creates an (empty) record for `key`. An empty
  /// record (head == nullptr) is invisible to all readers.
  Record* FindOrCreate(const Key& key);

  /// Number of keys ever inserted (including tombstoned ones).
  size_t KeyCount() const { return index_.size(); }

 private:
  const TableId id_;
  const std::string name_;
  BTree index_;

  // Ownership of records, for destruction.
  SpinLatch alloc_latch_;
  std::vector<std::unique_ptr<Record>> records_;
};

}  // namespace skeena::memdb

#endif  // SKEENA_MEMDB_MEM_TABLE_H_
