#ifndef SKEENA_MEMDB_MEM_ENGINE_H_
#define SKEENA_MEMDB_MEM_ENGINE_H_

#include <atomic>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/active_registry.h"
#include "common/epoch.h"
#include "common/sharded_counter.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/types.h"
#include "log/log_manager.h"
#include "log/log_records.h"
#include "memdb/mem_table.h"
#include "memdb/mem_txn.h"

namespace skeena::memdb {

/// Memory-optimized MVCC engine (ERMIA-like).
///
/// Implements the fast half of the paper's fast-slow architecture:
///  * snapshots are a single atomic load of the engine clock — the property
///    that makes memdb the natural CSR *anchor engine* (Section 4.3);
///  * commit timestamps come from an atomic fetch-add;
///  * snapshot isolation with first-committer-wins write conflicts;
///  * serializability via OCC read-set validation, which forbids
///    anti-dependencies and therefore exhibits the commit-ordering property
///    Skeena requires (Section 4.7);
///  * pre-/post-commit split with buffered writes, so a Skeena commit-check
///    failure after pre-commit aborts without any shared-state undo;
///  * append-only log with group commit; log-replay recovery.
///
/// Version reclamation (docs/RECLAMATION.md) is unified with the CSR's:
/// readers pin an EpochGuard for each chain traversal, committers unlink
/// versions older than the engine's single GC floor and retire them through
/// the shared EpochManager. The floor is min(oldest registered snapshot,
/// external GC-horizon provider) and only ever advances; pinned
/// (coordinator-chosen) snapshots below it are rejected at Begin.
class MemEngine {
 public:
  struct Options {
    LogManager::Options log;
    bool enable_logging = true;
    /// ERMIA appends a commit record even for read-only transactions
    /// (observed in paper Section 6.4); kept for fidelity, switchable for
    /// ablations.
    bool log_read_only_commits = true;
    /// Advance the GC floor every N commits (per committing thread).
    uint64_t gc_interval = 256;
    size_t max_concurrent_txns = 4096;
  };

  /// `epoch` is the reclamation domain retired versions are freed through;
  /// pass the database-owned manager so all engines and the CSR share one
  /// epoch domain. When null (standalone use, tests) the engine owns a
  /// private one.
  MemEngine(std::unique_ptr<StorageDevice> log_device, Options options,
            EpochManager* epoch = nullptr);
  ~MemEngine();

  MemEngine(const MemEngine&) = delete;
  MemEngine& operator=(const MemEngine&) = delete;

  // ----------------------------------------------------------- schema
  TableId CreateTable(const std::string& name);
  MemTable* GetTable(TableId id) const;
  MemTable* GetTableByName(const std::string& name) const;

  // ------------------------------------------------------- transactions
  /// Latest engine snapshot: one atomic load (the cheap anchor-snapshot
  /// acquisition the paper leverages).
  Timestamp LatestSnapshot() const {
    return clock_.load(std::memory_order_seq_cst);
  }

  /// Begins a transaction. `snapshot == kInvalidTimestamp` (or
  /// `kMaxTimestamp`, the adapter's "unconstrained" convention) means
  /// "latest".
  /// A coordinator-chosen (cross-engine) snapshot that has already fallen
  /// below the version-GC floor returns nullptr: the versions it would read
  /// may be unlinked, so the caller must re-select (Skeena treats this like
  /// a CSR abort and retries with a fresh snapshot).
  ///
  /// Contract for pinned snapshots: between selecting the snapshot and this
  /// call, the caller must hold the floor below it through the GC-horizon
  /// provider (the Database's anchor registration + CSR MinSelectableValue
  /// chain does exactly this); the floor check here only rejects snapshots
  /// that were already stale at selection time.
  std::unique_ptr<MemTxn> Begin(IsolationLevel iso,
                                Timestamp snapshot = kInvalidTimestamp);

  /// Re-acquires the transaction's snapshot (read-committed mode refreshes
  /// on every record access, paper Table 2). `snapshot == kInvalidTimestamp`
  /// means "latest"; a coordinator-chosen snapshot below the GC floor fails
  /// with kSkeenaAbort (like Begin, the caller must re-select).
  Status RefreshSnapshot(MemTxn* txn,
                         Timestamp snapshot = kInvalidTimestamp);

  Status Get(MemTxn* txn, TableId table, const Key& key, std::string* value);
  Status Put(MemTxn* txn, TableId table, const Key& key,
             std::string_view value);
  Status Delete(MemTxn* txn, TableId table, const Key& key);

  /// Visits visible rows with key >= lower in key order; stops when the
  /// callback returns false or `limit` rows were delivered (0 = unlimited).
  /// The callback runs outside the epoch pin (row values are copied out
  /// first), so it may block freely.
  Status Scan(MemTxn* txn, TableId table, const Key& lower, size_t limit,
              const std::function<bool(const Key&, const std::string&)>& cb);

  /// Pre-commit: latches the write set, draws the commit timestamp
  /// (fetch-add), validates (first-committer-wins; OCC read validation under
  /// serializable) and logs the write images plus — for cross-engine
  /// transactions — a commit-begin record. On failure the transaction is
  /// fully aborted. After success the transaction may still be aborted with
  /// Abort() (used when Skeena's commit check fails).
  Status PreCommit(MemTxn* txn, GlobalTxnId gtid, bool cross_engine);

  /// Post-commit: installs the buffered versions (results become visible),
  /// releases latches and appends the commit / commit-end record. Returns
  /// the LSN the commit is durable at.
  Lsn PostCommit(MemTxn* txn, GlobalTxnId gtid, bool cross_engine);

  /// Aborts an active or pre-committed transaction.
  void Abort(MemTxn* txn);

  // ------------------------------------------------------- replication
  /// Commit horizon for log shipping: every commit with cts <= the returned
  /// value has appended ALL of its log records (the committing-window
  /// registry is held from before the timestamp draw until after the last
  /// append, so the scan cannot miss an in-flight committer). Log append
  /// order is not cts order, so a plain "ship up to LSN X" carries no such
  /// guarantee on its own — the shipper samples this horizon, then the LSN.
  Timestamp ReplicationHorizon() const;

  /// Replica-side apply of one replayed committed transaction: installs the
  /// write images at `cts`, re-logs them locally, and advances the clock to
  /// at least `cts`. Must be called in ascending-cts order (single applier
  /// thread); concurrent read-only transactions are safe — installs take
  /// the record latches like a primary post-commit.
  Status ApplyReplicated(GlobalTxnId gtid, Timestamp cts,
                         const std::vector<LogRecord>& records);

  // ------------------------------------------------------------- misc
  LogManager* log() const { return log_.get(); }

  /// Reclamation domain versions retire through (the database-owned manager
  /// unless this engine runs standalone).
  EpochManager& epoch() { return *epoch_; }

  /// Oldest snapshot any active transaction may use (GC horizon input).
  Timestamp MinActiveSnapshot() const {
    return active_.MinActive(LatestSnapshot());
  }

  /// Version-GC floor: versions strictly older than the newest version at
  /// or below it are unlinked at install time. Monotone. Test hook.
  Timestamp GcFloor() const {
    return gc_floor_.load(std::memory_order_acquire);
  }

  /// External bound on the GC floor: the coordinator supplies the oldest
  /// snapshot a live cross-engine transaction could still select into this
  /// engine (via the CSR), so version unlinking never outruns a crossing
  /// that has not materialized its read view yet. Must be set before
  /// concurrent use; consulted on every floor advance.
  void SetGcHorizonProvider(std::function<Timestamp()> provider) {
    gc_horizon_provider_ = std::move(provider);
  }

  /// Replays the engine's log into the (already created) tables. Data of
  /// cross-engine transactions whose gtid is in `excluded` is skipped —
  /// core recovery computes that set from both engines' logs (Section 4.6).
  Status Recover(const std::set<GlobalTxnId>& excluded);

  struct Stats {
    uint64_t commits = 0;
    uint64_t aborts = 0;
    uint64_t versions_pruned = 0;
  };
  Stats stats() const;

 private:
  Version* ReadVisible(Record* rec, Timestamp snapshot) const;
  void LatchWriteSet(MemTxn* txn);
  void UnlatchWriteSet(MemTxn* txn);
  // Unlinks the prunable sub-chain below `new_head` (caller holds the
  // record latch) and returns it for retirement after the latches drop,
  // or nullptr when nothing is prunable.
  Version* PruneVersions(Version* new_head, Timestamp floor);
  // `thread_commits` is the committing thread's shard-local commit count,
  // used as the periodic trigger clock (every gc_interval commits by a
  // thread) without folding the sharded counter on the hot path.
  void MaybeAdvanceGcFloor(uint64_t thread_commits);

  Options options_;
  std::unique_ptr<LogManager> log_;

  std::atomic<Timestamp> clock_{1};  // ts 1 = pre-loaded ("genesis") data
  ActiveSnapshotRegistry active_;
  // Committers registered from before their cts draw until their last log
  // append; MinActive over it bounds ReplicationHorizon().
  ActiveSnapshotRegistry committing_;

  // Reclamation domain (shared with the CSR and the other engine when
  // database-owned). Declared before the floor/counters so a standalone
  // engine's retired versions outlive everything that retires into it.
  std::unique_ptr<EpochManager> owned_epoch_;
  EpochManager* epoch_;

  // Single version-GC floor (monotone). Inline pruning at install reads it;
  // MaybeAdvanceGcFloor CAS-maxes it to min(registry scan, provider). The
  // old two-level published/apply floor pair is gone: MinActive waits out
  // in-flight registrations (exact scan) and pinned snapshots are covered
  // by the provider from selection to registration, so one floor value is
  // simultaneously safe to prune with and safe to validate against. See
  // docs/RECLAMATION.md for the full argument. gc_round_mu_ only dedups
  // concurrent advance rounds (try-lock); it carries no floor protocol.
  std::atomic<Timestamp> gc_floor_{1};
  Mutex gc_round_mu_;
  std::function<Timestamp()> gc_horizon_provider_;

  // Hot-path counters are sharded so committing threads never contend on
  // a stats cache line. The prune diagnostic additionally carries a
  // tick-refreshed fold cache: it sits on the reclamation path and may be
  // polled at sampling frequency, and a 50µs-stale monotone count is
  // indistinguishable from an exact one there.
  ShardedCounter commit_count_;
  ShardedCounter abort_count_;
  ShardedCounter pruned_count_{/*read_cache_ns=*/50'000};

  mutable Mutex tables_mu_;
  std::vector<std::unique_ptr<MemTable>> tables_ SKEENA_GUARDED_BY(tables_mu_);
};

}  // namespace skeena::memdb

#endif  // SKEENA_MEMDB_MEM_ENGINE_H_
