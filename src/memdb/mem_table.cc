#include "memdb/mem_table.h"

namespace skeena::memdb {

MemTable::~MemTable() {
  // Free all version chains. No concurrent access is allowed by contract.
  for (auto& rec : records_) {
    // relaxed-ok: destructor, single-threaded by the same contract.
    Version* v = rec->head.load(std::memory_order_relaxed);
    while (v != nullptr) {
      Version* next = v->next;
      delete v;
      v = next;
    }
  }
}

Record* MemTable::Find(const Key& key) const {
  uint64_t value = 0;
  if (!index_.Lookup(key, &value)) return nullptr;
  return reinterpret_cast<Record*>(value);
}

Record* MemTable::FindOrCreate(const Key& key) {
  uint64_t value = 0;
  if (index_.Lookup(key, &value)) {
    return reinterpret_cast<Record*>(value);
  }
  auto rec = std::make_unique<Record>();
  Record* raw = rec.get();
  if (index_.Insert(key, reinterpret_cast<uint64_t>(raw))) {
    alloc_latch_.lock();
    records_.push_back(std::move(rec));
    alloc_latch_.unlock();
    return raw;
  }
  // Lost the race: another thread inserted the key first.
  bool found = index_.Lookup(key, &value);
  (void)found;
  return reinterpret_cast<Record*>(value);
}

}  // namespace skeena::memdb
