#ifndef SKEENA_MEMDB_MEM_TXN_H_
#define SKEENA_MEMDB_MEM_TXN_H_

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/encoding.h"
#include "common/types.h"
#include "memdb/mem_table.h"

namespace skeena::memdb {

/// A memdb (sub-)transaction.
///
/// Writes are buffered privately and installed only at post-commit, so an
/// abort — including a Skeena commit-check abort *after* pre-commit — never
/// has to undo anything in shared state. This realizes the pre-/post-commit
/// split the paper relies on (Section 4.5): pre-commit assigns the commit
/// timestamp and validates; post-commit makes results visible.
class MemTxn {
 public:
  enum class State : uint8_t {
    kActive,
    kPreCommitted,  // commit_ts assigned, write set latched, not yet visible
    kCommitted,
    kAborted,
  };

  struct WriteEntry {
    Record* rec;
    TableId table;
    Key key;
    std::string value;
    bool tombstone;
  };

  struct ReadEntry {
    Record* rec;
    Version* observed_head;  // head pointer at read time (OCC validation)
  };

  MemTxn(Timestamp begin_ts, IsolationLevel iso, size_t registry_slot)
      : begin_ts_(begin_ts), iso_(iso), registry_slot_(registry_slot) {}

  MemTxn(const MemTxn&) = delete;
  MemTxn& operator=(const MemTxn&) = delete;

  Timestamp begin_ts() const { return begin_ts_; }
  Timestamp commit_ts() const { return commit_ts_; }
  IsolationLevel isolation() const { return iso_; }
  State state() const { return state_; }
  size_t registry_slot() const { return registry_slot_; }
  bool read_only() const { return writes_.empty(); }

  /// Index of the buffered write to `rec`, or npos.
  static constexpr size_t kNone = ~size_t{0};
  size_t FindWrite(Record* rec) const {
    auto it = write_index_.find(rec);
    return it == write_index_.end() ? kNone : it->second;
  }

  void AddWrite(Record* rec, TableId table, const Key& key,
                std::string value, bool tombstone) {
    size_t existing = FindWrite(rec);
    if (existing != kNone) {
      writes_[existing].value = std::move(value);
      writes_[existing].tombstone = tombstone;
      return;
    }
    write_index_.emplace(rec, writes_.size());
    writes_.push_back(
        WriteEntry{rec, table, key, std::move(value), tombstone});
  }

  void AddRead(Record* rec, Version* observed_head) {
    reads_.push_back(ReadEntry{rec, observed_head});
  }

  std::vector<WriteEntry>& writes() { return writes_; }
  const std::vector<ReadEntry>& reads() const { return reads_; }

 private:
  friend class MemEngine;

  Timestamp begin_ts_;
  Timestamp commit_ts_ = kInvalidTimestamp;
  IsolationLevel iso_;
  size_t registry_slot_;
  // Slot in the engine's committing-window registry, held from the
  // commit-timestamp draw until the last log append (replication horizon).
  size_t committing_slot_ = kNone;
  State state_ = State::kActive;
  bool latched_ = false;  // write-set record latches held (pre-committed)

  std::vector<WriteEntry> writes_;
  std::unordered_map<Record*, size_t> write_index_;
  std::vector<ReadEntry> reads_;  // tracked under serializable isolation
};

}  // namespace skeena::memdb

#endif  // SKEENA_MEMDB_MEM_TXN_H_
