#ifndef SKEENA_COMMON_EPOCH_H_
#define SKEENA_COMMON_EPOCH_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/spin_latch.h"
#include "common/thread_annotations.h"

namespace skeena {

/// Epoch-based memory reclamation (EBR, after Fraser) for read-mostly
/// structures published RCU-style: readers pin the current epoch for the
/// duration of a critical section (EpochGuard) and traverse shared objects
/// through atomic pointers without taking any lock; writers unlink an object
/// from the live structure, then Retire() it. A retired object is freed only
/// after the global epoch has advanced twice past its retire epoch, which
/// implies every reader that could still hold a reference has exited its
/// critical section.
///
/// Design:
///  * Three-phase global epoch counter. Each thread owns one cache-line-
///    padded slot per manager; a pinned slot stores `epoch * 2 + 1`, a
///    quiescent one stores 0. Guards nest (the nesting depth lives in
///    thread-local state, only the outermost Enter/Exit touches the slot).
///  * TryAdvance() bumps the global epoch when every pinned slot has
///    observed it, then frees limbo entries older than two epochs. It is
///    called opportunistically from Retire(); callers may also drive it
///    directly (tests, shutdown).
///  * Thread slots are claimed on a thread's first Enter() against a
///    manager and handed back when the thread exits (a thread-local
///    registration cache releases slots of still-live managers), so thread
///    churn does not leak slots.
///
/// Destruction contract: no thread may be inside an EpochGuard of this
/// manager when it is destroyed; the destructor then frees every remaining
/// limbo entry unconditionally.
///
/// One manager is the database-wide reclamation domain: the CSR's RCU
/// partition lists, memdb version chains and stordb undo batches all
/// retire through the Database-owned instance (docs/RECLAMATION.md).
class EpochManager {
 public:
  EpochManager();
  ~EpochManager();

  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  /// Pins the calling thread to the current epoch. Nests; prefer
  /// EpochGuard.
  ///
  /// Pin preconditions: a pinned thread stalls reclamation for the whole
  /// domain, so the critical section must be short and must NOT span a
  /// blocking wait the thread does not control (lock acquisition, page
  /// I/O, commit waits, user callbacks — the PR-2 review bug class).
  /// First Enter() on a thread claims a slot under a mutex (cold path);
  /// later Enter/Exit pairs touch only thread-private state plus one
  /// padded slot.
  void Enter();
  /// Unpins (outermost Exit of the nest). Safe to call without a matching
  /// Enter (ignored).
  void Exit();

  /// Defers `delete p` until no pinned reader can still reference it.
  /// `p` must already be unlinked — unreachable for readers entering a new
  /// critical section. Callable pinned or unpinned; internally drives
  /// TryAdvance(), so it may run ripe deleters synchronously on this
  /// thread — do not retire while holding a latch a deleter's destructor
  /// could need (the in-tree deleters are plain frees).
  template <typename T>
  void Retire(T* p) {
    RetireRaw(p, [](void* q) { delete static_cast<T*>(q); });
  }
  /// Type-erased Retire: `deleter(p)` runs after the grace period. Same
  /// preconditions as Retire().
  void RetireRaw(void* p, void (*deleter)(void*));

  /// Attempts one epoch advance and frees everything whose grace period has
  /// passed. Returns the number of objects freed. Non-blocking: returns 0
  /// if another thread is already advancing. Callable while pinned (the
  /// caller's own slot is current by construction), but a thread that
  /// stays pinned caps progress at one advance — drive it from unpinned
  /// maintenance points (GC floor advances, commit triggers) for steady
  /// drain.
  size_t TryAdvance();

  /// Current global epoch (diagnostic; no pin required).
  uint64_t GlobalEpoch() const {
    return global_epoch_.load(std::memory_order_seq_cst);
  }

  /// Objects retired but not yet freed (test/diagnostic hook; takes the
  /// limbo mutex, call unpinned from cold paths only).
  size_t RetiredCount() const;
  /// Objects freed over the manager's lifetime (test/diagnostic hook).
  uint64_t FreedCount() const {
    // relaxed-ok: monotone diagnostic counter; no ordering consumers.
    return freed_count_.load(std::memory_order_relaxed);
  }

 private:
  friend struct ThreadEpochState;

  // Slot states: 0 = quiescent, otherwise epoch * 2 + 1 (pinned).
  using Slot = Padded<std::atomic<uint64_t>>;

  static constexpr size_t kSlotsPerChunk = 128;
  static constexpr size_t kMaxChunks = 64;

  struct LimboEntry {
    uint64_t epoch;
    void* ptr;
    void (*deleter)(void*);
  };

  // Body of TryAdvance once the advance ticket is won.
  size_t AdvanceLocked() SKEENA_REQUIRES(advance_mu_);

  // Thread-facing registration (called via thread-local state).
  size_t AcquireSlot();
  void ReleaseSlot(size_t slot);
  std::atomic<uint64_t>& SlotState(size_t slot) const;

  const uint64_t gen_;  // process-unique id for thread-local caches

  std::atomic<uint64_t> global_epoch_{1};

  // Slot storage grows in chunks so the pinned-slot scan stays lock-free.
  std::atomic<Slot*> chunks_[kMaxChunks] = {};
  std::atomic<size_t> slot_limit_{0};  // slots with a published chunk
  Mutex slots_mu_;                     // guards claim/release + growth
  std::vector<size_t> free_slots_ SKEENA_GUARDED_BY(slots_mu_);

  Mutex advance_mu_;  // one advancing thread at a time

  mutable Mutex limbo_mu_;
  std::vector<LimboEntry> limbo_ SKEENA_GUARDED_BY(limbo_mu_);
  std::atomic<uint64_t> freed_count_{0};
};

/// RAII pin on an EpochManager. Nestable and re-entrant per thread.
///
/// Scope discipline (see EpochManager::Enter): one traversal plus the use
/// of what it found — copy values out and drop the guard before invoking
/// anything that can block (user callbacks, I/O, lock waits). Holding a
/// guard across a blocking wait stalls epoch advancement and therefore
/// all reclamation in the domain.
class EpochGuard {
 public:
  explicit EpochGuard(EpochManager& mgr) : mgr_(&mgr) { mgr_->Enter(); }
  ~EpochGuard() { mgr_->Exit(); }

  EpochGuard(const EpochGuard&) = delete;
  EpochGuard& operator=(const EpochGuard&) = delete;

 private:
  EpochManager* mgr_;
};

}  // namespace skeena

#endif  // SKEENA_COMMON_EPOCH_H_
