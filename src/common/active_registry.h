#ifndef SKEENA_COMMON_ACTIVE_REGISTRY_H_
#define SKEENA_COMMON_ACTIVE_REGISTRY_H_

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "common/spin_latch.h"
#include "common/thread_annotations.h"
#include "common/types.h"

namespace skeena {

/// Tracks the snapshots in use by active transactions so garbage collectors
/// (memdb version pruning, stordb undo purge, CSR partition recycling —
/// paper Section 4.4) can compute the oldest snapshot still needed.
///
/// Registration protocol: the registrant stores kAcquiringSentinel, *then*
/// reads the engine clock, then stores the snapshot. A concurrent
/// MinActive() that observes the sentinel *waits it out* (the window is a
/// clock load plus one store; spinning keeps the scan exact): once the slot
/// resolves, the scan either sees the registered snapshot, or — if the slot
/// went back to empty — the registration it raced published *after* the
/// scan's load, so its snapshot was drawn from the clock after the scan's
/// fallback read and cannot undercut the minimum the scan returns. (The
/// previous protocol ignored sentinel slots outright; that leaves a hole
/// when the registrant read the clock before the scan began but its
/// snapshot store had not yet landed — see docs/RECLAMATION.md.)
///
/// Slot management is latch-free on the per-transaction path:
///  * Acquire()/Release() recycle slots through a thread-local cache (one
///    small free list per (thread, registry)), so the steady state is a
///    plain vector pop/push with no shared-state round-trip. Slots a thread
///    caches stay claimed (MinActive keeps scanning them; they read as
///    kEmpty), which keeps the scan bound at the peak transaction
///    concurrency. The cache is capped: Release() spills excess back to the
///    shared pool (under spill_mu_) once it exceeds the cap, so a thread
///    that only ever releases — acquire-on-one-thread/release-on-another
///    handoff — cannot strand slots while acquirers claim fresh ones. A
///    thread also spills its cached slots when it exits (liveness-checked,
///    so registry teardown is safe), so thread churn never strands slots.
///  * ClaimSlot() grows the slot array in chunks under a mutex (cold path:
///    first use per thread plus growth). Unlike the previous assert — which
///    compiled out in release builds and let slot `initial_slots` write out
///    of bounds — exhausting the absolute capacity is a hard failure in
///    every build type.
class ActiveSnapshotRegistry {
 public:
  static constexpr Timestamp kEmpty = 0;
  static constexpr Timestamp kAcquiringSentinel = kMaxTimestamp;

  /// `initial_slots` sizes the first chunk; the registry grows chunk by
  /// chunk up to kMaxChunks * chunk size before failing loudly.
  explicit ActiveSnapshotRegistry(size_t initial_slots = 1024);
  ~ActiveSnapshotRegistry();

  ActiveSnapshotRegistry(const ActiveSnapshotRegistry&) = delete;
  ActiveSnapshotRegistry& operator=(const ActiveSnapshotRegistry&) = delete;

  size_t Capacity() const { return chunk_size_ * kMaxChunks; }

  /// Claims a fresh slot, growing the backing store if needed. Aborts the
  /// process (in all build types) when the absolute capacity is exhausted.
  size_t ClaimSlot() {
    MutexLock lock(grow_mu_);
    // relaxed-ok: next_slot_ is only written under grow_mu_ (held here);
    // the release store below is the publication edge scanners pair with.
    size_t slot = next_slot_.load(std::memory_order_relaxed);
    if (slot >= Capacity()) {
      std::fprintf(stderr,
                   "ActiveSnapshotRegistry: slot capacity exhausted "
                   "(%zu slots)\n",
                   slot);
      std::abort();
    }
    size_t chunk_idx = slot / chunk_size_;
    // relaxed-ok: chunk pointers are only installed under grow_mu_.
    if (chunks_[chunk_idx].load(std::memory_order_relaxed) == nullptr) {
      chunks_[chunk_idx].store(new Padded<std::atomic<Timestamp>>[chunk_size_],
                               std::memory_order_release);
    }
    // Publish the chunk before the slot count: a scanner that sees the new
    // count also sees the chunk pointer.
    next_slot_.store(slot + 1, std::memory_order_release);
    return slot;
  }

  /// Acquires a slot for one transaction; pair with Release(). Steady
  /// state is a thread-local free-list pop — no latch, no shared write.
  /// Falls back to slots spilled by exited threads, then to ClaimSlot().
  size_t Acquire();

  void Release(size_t slot);

  /// Marks the slot as "snapshot being acquired". Must be followed by
  /// SetSnapshot() or Clear().
  void BeginAcquire(size_t slot) {
    SlotRef(slot).store(kAcquiringSentinel, std::memory_order_seq_cst);
  }

  /// Publishes the registrant's snapshot. `kMaxTimestamp` is reserved as
  /// the acquiring sentinel and can never be registered as a real
  /// snapshot — MinActive() waits on sentinel slots, so letting one
  /// through would turn a long-lived registration into a permanent GC
  /// spin; callers wanting "latest / unconstrained" must resolve it to a
  /// concrete clock value first (the engines do). Hard failure in every
  /// build type, mirroring ClaimSlot's capacity check.
  void SetSnapshot(size_t slot, Timestamp snap) {
    if (snap == kAcquiringSentinel) {
      std::fprintf(stderr,
                   "ActiveSnapshotRegistry: kMaxTimestamp is the acquiring "
                   "sentinel and cannot be registered as a snapshot\n");
      std::abort();
    }
    SlotRef(slot).store(snap, std::memory_order_seq_cst);
  }

  void Clear(size_t slot) {
    SlotRef(slot).store(kEmpty, std::memory_order_release);
  }

  /// Oldest snapshot of any registered transaction, or `fallback` when none
  /// is active. Slots mid-registration are waited out (see class docs), so
  /// the result is a true lower bound on every snapshot registered before
  /// the corresponding slot read — the property the engines' single GC
  /// floors rely on. `fallback` must be read from the engine clock *before*
  /// calling (pass-by-value does this naturally at the call site).
  ///
  /// Cold path (GC floor advances, CSR recycling); may briefly spin but
  /// never blocks on a lock and requires no epoch pin.
  Timestamp MinActive(Timestamp fallback) const {
    Timestamp min = kMaxTimestamp;
    size_t limit = next_slot_.load(std::memory_order_acquire);
    const Padded<std::atomic<Timestamp>>* chunk = nullptr;
    size_t chunk_idx = ~size_t{0};
    for (size_t i = 0; i < limit; ++i) {
      if (i / chunk_size_ != chunk_idx) {
        chunk_idx = i / chunk_size_;
        chunk = chunks_[chunk_idx].load(std::memory_order_acquire);
      }
      const std::atomic<Timestamp>& slot = chunk[i % chunk_size_].value;
      Timestamp v = slot.load(std::memory_order_seq_cst);
      // Wait out in-flight registrations: the window is one clock load plus
      // one store on the registrant, but ignoring it would let a registrant
      // that read the clock before our caller read `fallback` slip under
      // the returned minimum. Yield occasionally in case the registrant
      // thread is preempted mid-window on a loaded machine.
      for (uint32_t spins = 0; v == kAcquiringSentinel;
           v = slot.load(std::memory_order_seq_cst)) {
        if (++spins % 1024 == 0) {
          std::this_thread::yield();
        } else {
          CpuRelax();
        }
      }
      if (v == kEmpty) continue;
      if (v < min) min = v;
    }
    return min == kMaxTimestamp ? fallback : min;
  }

 private:
  friend struct ThreadSlotCaches;

  static constexpr size_t kMaxChunks = 64;

  // Returns cached slots of an exiting (or evicted) thread to the shared
  // spill list so they can be re-acquired by other threads.
  void SpillSlots(std::vector<size_t>&& slots);

  std::atomic<Timestamp>& SlotRef(size_t slot) const {
    auto* chunk = chunks_[slot / chunk_size_].load(std::memory_order_acquire);
    return chunk[slot % chunk_size_].value;
  }

  const size_t chunk_size_;
  // Generation id distinguishes this registry from a destroyed one reusing
  // the same address, so stale thread-local caches never cross registries.
  const uint64_t gen_;
  std::atomic<Padded<std::atomic<Timestamp>>*> chunks_[kMaxChunks] = {};
  std::atomic<size_t> next_slot_{0};
  Mutex grow_mu_;

  // Slots handed back by exited threads; consulted before claiming fresh.
  Mutex spill_mu_;
  std::vector<size_t> spilled_ SKEENA_GUARDED_BY(spill_mu_);
};

}  // namespace skeena

#endif  // SKEENA_COMMON_ACTIVE_REGISTRY_H_
