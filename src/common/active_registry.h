#ifndef SKEENA_COMMON_ACTIVE_REGISTRY_H_
#define SKEENA_COMMON_ACTIVE_REGISTRY_H_

#include <atomic>
#include <cassert>
#include <vector>

#include "common/spin_latch.h"
#include "common/types.h"

namespace skeena {

/// Tracks the snapshots in use by active transactions so garbage collectors
/// (memdb version pruning, CSR partition recycling — paper Section 4.4) can
/// compute the oldest snapshot still needed.
///
/// Each worker thread claims one padded slot on first use. Registration
/// protocol: the thread stores kAcquiringSentinel, *then* reads the engine
/// clock, then stores the snapshot. A concurrent MinActive() that observes
/// the sentinel may safely ignore that slot: the registrant's eventual
/// snapshot is drawn from the clock *after* the scan began, so it can never
/// be older than the minimum the scan computes.
class ActiveSnapshotRegistry {
 public:
  static constexpr Timestamp kEmpty = 0;
  static constexpr Timestamp kAcquiringSentinel = kMaxTimestamp;

  explicit ActiveSnapshotRegistry(size_t max_slots = 1024)
      : slots_(max_slots) {}

  /// Claims a slot for the calling thread (stable across calls).
  size_t ClaimSlot() {
    size_t slot = next_slot_.fetch_add(1, std::memory_order_relaxed);
    assert(slot < slots_.size());
    return slot;
  }

  /// Acquires a slot from the free list (or claims a fresh one). Pair with
  /// Release(). Used per-transaction rather than per-thread.
  size_t Acquire() {
    free_latch_.lock();
    if (!free_.empty()) {
      size_t slot = free_.back();
      free_.pop_back();
      free_latch_.unlock();
      return slot;
    }
    free_latch_.unlock();
    return ClaimSlot();
  }

  void Release(size_t slot) {
    Clear(slot);
    free_latch_.lock();
    free_.push_back(slot);
    free_latch_.unlock();
  }

  /// Marks the slot as "snapshot being acquired". Must be followed by
  /// SetSnapshot() or Clear().
  void BeginAcquire(size_t slot) {
    slots_[slot].value.store(kAcquiringSentinel, std::memory_order_seq_cst);
  }

  void SetSnapshot(size_t slot, Timestamp snap) {
    slots_[slot].value.store(snap, std::memory_order_seq_cst);
  }

  void Clear(size_t slot) {
    slots_[slot].value.store(kEmpty, std::memory_order_release);
  }

  /// Oldest snapshot of any registered transaction, or `fallback` when none
  /// is active. Slots in the acquiring state are ignored (see class docs).
  Timestamp MinActive(Timestamp fallback) const {
    Timestamp min = kMaxTimestamp;
    size_t limit = next_slot_.load(std::memory_order_acquire);
    if (limit > slots_.size()) limit = slots_.size();
    for (size_t i = 0; i < limit; ++i) {
      Timestamp v = slots_[i].value.load(std::memory_order_seq_cst);
      if (v == kEmpty || v == kAcquiringSentinel) continue;
      if (v < min) min = v;
    }
    return min == kMaxTimestamp ? fallback : min;
  }

 private:
  std::vector<Padded<std::atomic<Timestamp>>> slots_;
  std::atomic<size_t> next_slot_{0};
  SpinLatch free_latch_;
  std::vector<size_t> free_;
};

}  // namespace skeena

#endif  // SKEENA_COMMON_ACTIVE_REGISTRY_H_
