#include "common/active_registry.h"

#include <unordered_set>

namespace skeena {

namespace {

// Liveness registry so thread-exit spill-back never touches a destroyed
// registry (same pattern as EpochManager's thread slots). Touched only at
// registry/thread birth and death — never on the Acquire/Release hot path.
std::mutex& LiveRegistriesMu() {
  static std::mutex mu;
  return mu;
}

std::unordered_set<const ActiveSnapshotRegistry*>& LiveRegistries() {
  static auto* set = new std::unordered_set<const ActiveSnapshotRegistry*>();
  return *set;
}

std::atomic<uint64_t> g_registry_gen{1};

}  // namespace

/// Per-thread slot free lists, one per (registry, generation). On thread
/// exit — or when the per-thread entry list is pruned — cached slots are
/// spilled back to their registry (if it is still alive), so thread churn
/// never strands claimed slots.
struct ThreadSlotCaches {
  struct Entry {
    ActiveSnapshotRegistry* registry;
    uint64_t gen;
    std::vector<size_t> free_slots;
  };
  std::vector<Entry> entries;

  static constexpr size_t kMaxEntries = 64;

  std::vector<size_t>& For(ActiveSnapshotRegistry* reg, uint64_t gen) {
    for (auto& e : entries) {
      if (e.registry == reg && e.gen == gen) return e.free_slots;
    }
    if (entries.size() >= kMaxEntries) Prune();
    entries.push_back(Entry{reg, gen, {}});
    return entries.back().free_slots;
  }

  void Prune() {
    std::lock_guard<std::mutex> lock(LiveRegistriesMu());
    for (auto& e : entries) {
      if (e.free_slots.empty()) continue;
      if (LiveRegistries().count(e.registry) != 0 &&
          e.registry->gen_ == e.gen) {
        e.registry->SpillSlots(std::move(e.free_slots));
      }
      e.free_slots.clear();
    }
    entries.clear();
  }

  ~ThreadSlotCaches() { Prune(); }
};

namespace {
ThreadSlotCaches& TlsCaches() {
  thread_local ThreadSlotCaches caches;
  return caches;
}
}  // namespace

ActiveSnapshotRegistry::ActiveSnapshotRegistry(size_t initial_slots)
    : chunk_size_(initial_slots == 0 ? 1 : initial_slots),
      gen_(g_registry_gen.fetch_add(1, std::memory_order_relaxed)) {
  std::lock_guard<std::mutex> lock(LiveRegistriesMu());
  LiveRegistries().insert(this);
}

ActiveSnapshotRegistry::~ActiveSnapshotRegistry() {
  {
    std::lock_guard<std::mutex> lock(LiveRegistriesMu());
    LiveRegistries().erase(this);
  }
  for (auto& c : chunks_) delete[] c.load(std::memory_order_relaxed);
}

size_t ActiveSnapshotRegistry::Acquire() {
  std::vector<size_t>& cache = TlsCaches().For(this, gen_);
  if (!cache.empty()) {
    size_t slot = cache.back();
    cache.pop_back();
    return slot;
  }
  {
    std::lock_guard<std::mutex> lock(spill_mu_);
    if (!spilled_.empty()) {
      size_t slot = spilled_.back();
      spilled_.pop_back();
      return slot;
    }
  }
  return ClaimSlot();
}

void ActiveSnapshotRegistry::Release(size_t slot) {
  Clear(slot);
  std::vector<size_t>& cache = TlsCaches().For(this, gen_);
  cache.push_back(slot);
  // Cap the per-thread cache: when transactions are acquired on one thread
  // and released on another (worker-pool handoff), the releasing thread
  // would otherwise hoard slots until thread exit while acquirers keep
  // claiming fresh ones toward the hard capacity limit. Spill half back to
  // the shared pool so the cap isn't re-hit on the very next Release.
  constexpr size_t kMaxCachedSlots = 32;
  if (cache.size() > kMaxCachedSlots) {
    std::vector<size_t> spill(cache.begin() + kMaxCachedSlots / 2,
                              cache.end());
    cache.resize(kMaxCachedSlots / 2);
    SpillSlots(std::move(spill));
  }
}

void ActiveSnapshotRegistry::SpillSlots(std::vector<size_t>&& slots) {
  std::lock_guard<std::mutex> lock(spill_mu_);
  if (spilled_.empty()) {
    spilled_ = std::move(slots);
  } else {
    spilled_.insert(spilled_.end(), slots.begin(), slots.end());
  }
}

}  // namespace skeena
