#include "common/active_registry.h"

#include "common/thread_slot_registry.h"

namespace skeena {

namespace {

// Liveness domain so thread-exit spill-back never touches a destroyed
// registry (shared protocol with EpochManager — see
// common/thread_slot_registry.h). Touched only at registry/thread birth
// and death — never on the Acquire/Release hot path. Deliberately leaked:
// thread destructors may run after static destructors.
ThreadSlotDomain& RegistryDomain() {
  static auto* domain = new ThreadSlotDomain();
  return *domain;
}

}  // namespace

/// Per-thread slot free lists, one per (registry, generation). On thread
/// exit — or when the per-thread entry list is pruned — cached slots are
/// spilled back to their registry (if it is still alive), so thread churn
/// never strands claimed slots.
struct ThreadSlotCaches {
  ThreadSlotEntries<ActiveSnapshotRegistry, std::vector<size_t>> entries;

  using Entry =
      ThreadSlotEntries<ActiveSnapshotRegistry, std::vector<size_t>>::Entry;

  static constexpr size_t kMaxEntries = 64;

  std::vector<size_t>& For(ActiveSnapshotRegistry* reg, uint64_t gen) {
    if (Entry* e = entries.Find(reg, gen)) return e->payload;
    if (entries.size() >= kMaxEntries) Prune();
    return entries.Add(reg, gen, {}).payload;
  }

  void Prune() {
    entries.Evict(
        RegistryDomain(), [](const Entry&) { return false; },
        [](Entry& e) {
          if (!e.payload.empty()) {
            e.owner->SpillSlots(std::move(e.payload));
          }
        });
  }

  ~ThreadSlotCaches() { Prune(); }
};

namespace {
ThreadSlotCaches& TlsCaches() {
  thread_local ThreadSlotCaches caches;
  return caches;
}
}  // namespace

ActiveSnapshotRegistry::ActiveSnapshotRegistry(size_t initial_slots)
    : chunk_size_(initial_slots == 0 ? 1 : initial_slots),
      gen_(RegistryDomain().RegisterOwner(this)) {}

ActiveSnapshotRegistry::~ActiveSnapshotRegistry() {
  RegistryDomain().UnregisterOwner(this);
  // relaxed-ok: destructor; no concurrent access by contract.
  for (auto& c : chunks_) delete[] c.load(std::memory_order_relaxed);
}

size_t ActiveSnapshotRegistry::Acquire() {
  std::vector<size_t>& cache = TlsCaches().For(this, gen_);
  if (!cache.empty()) {
    size_t slot = cache.back();
    cache.pop_back();
    return slot;
  }
  {
    MutexLock lock(spill_mu_);
    if (!spilled_.empty()) {
      size_t slot = spilled_.back();
      spilled_.pop_back();
      return slot;
    }
  }
  return ClaimSlot();
}

void ActiveSnapshotRegistry::Release(size_t slot) {
  Clear(slot);
  std::vector<size_t>& cache = TlsCaches().For(this, gen_);
  cache.push_back(slot);
  // Cap the per-thread cache: when transactions are acquired on one thread
  // and released on another (worker-pool handoff), the releasing thread
  // would otherwise hoard slots until thread exit while acquirers keep
  // claiming fresh ones toward the hard capacity limit. Spill half back to
  // the shared pool so the cap isn't re-hit on the very next Release.
  constexpr size_t kMaxCachedSlots = 32;
  if (cache.size() > kMaxCachedSlots) {
    std::vector<size_t> spill(cache.begin() + kMaxCachedSlots / 2,
                              cache.end());
    cache.resize(kMaxCachedSlots / 2);
    SpillSlots(std::move(spill));
  }
}

void ActiveSnapshotRegistry::SpillSlots(std::vector<size_t>&& slots) {
  MutexLock lock(spill_mu_);
  if (spilled_.empty()) {
    spilled_ = std::move(slots);
  } else {
    spilled_.insert(spilled_.end(), slots.begin(), slots.end());
  }
}

}  // namespace skeena
