#include "common/parking_lot.h"

#include <chrono>
#include <cstdlib>

#include "common/sharded_counter.h"
#include "common/thread_annotations.h"

#if defined(__linux__)
#include <linux/futex.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <climits>
#endif

namespace skeena {
namespace {

struct LotCounters {
  ShardedCounter parks;
  ShardedCounter immediate_parks;
  ShardedCounter wakes;
};

LotCounters& Counters() {
  static LotCounters c;
  return c;
}

/// Condvar-bucket fallback. Park/Wake on the same word hash to the same
/// bucket; the bucket mutex orders the waiter's word recheck against the
/// waker's notify, which closes the lost-wakeup window futex closes in the
/// kernel.
struct Bucket {
  Mutex mu;
  CondVar cv;
};

constexpr size_t kBuckets = 64;

Bucket& BucketFor(const void* addr) {
  static Bucket buckets[kBuckets];
  uintptr_t h = reinterpret_cast<uintptr_t>(addr);
  h ^= h >> 17;
  h *= uintptr_t{0xed5ad4bb};
  h ^= h >> 11;
  return buckets[h & (kBuckets - 1)];
}

std::atomic<ParkingLot::Backend>& BackendWord() {
  static std::atomic<ParkingLot::Backend> backend = [] {
#if defined(__linux__)
    const char* env = std::getenv("SKEENA_PARKING_FALLBACK");
    bool fallback = env != nullptr && env[0] != '\0' && env[0] != '0';
    return fallback ? ParkingLot::Backend::kCondvar
                    : ParkingLot::Backend::kFutex;
#else
    return ParkingLot::Backend::kCondvar;
#endif
  }();
  return backend;
}

#if defined(__linux__)
static_assert(sizeof(std::atomic<uint32_t>) == sizeof(uint32_t) &&
                  std::atomic<uint32_t>::is_always_lock_free,
              "futex requires a plain 4-byte lock-free word");

// Returns true iff the thread blocked (EAGAIN = the kernel's atomic check
// saw the word already moved; EINTR/0 = it slept). Callers recheck either
// way.
bool FutexWait(const std::atomic<uint32_t>* word, uint32_t expected,
               const struct timespec* timeout = nullptr) {
  long rc = syscall(SYS_futex, reinterpret_cast<const uint32_t*>(word),
                    FUTEX_WAIT_PRIVATE, expected, timeout, nullptr, 0);
  return !(rc == -1 && errno == EAGAIN);
}

void FutexWake(const std::atomic<uint32_t>* word, int count) {
  syscall(SYS_futex, reinterpret_cast<const uint32_t*>(word),
          FUTEX_WAKE_PRIVATE, count, nullptr, nullptr, 0);
}
#endif

void CondvarWake(const std::atomic<uint32_t>& word) {
  Bucket& b = BucketFor(&word);
  // Taking (and releasing) the bucket mutex orders this wake after any
  // in-flight Park's recheck: a parker that saw the old word value is
  // already inside cv.wait and will receive the notify.
  { MutexLock guard(b.mu); }
  // Always notify_all, even for WakeOne: a bucket is shared by every word
  // that hashes into it, so a single notify could land on a waiter of a
  // *different* word, which re-parks and silently consumes the wake — a
  // lost wakeup for the intended thread. Waking the whole bucket turns
  // that into tolerated spurious wakes; WakeOne stays a genuine
  // single-thread wake only on the futex backend.
  b.cv.NotifyAll();
}

}  // namespace

bool ParkingLot::Park(const std::atomic<uint32_t>& word, uint32_t expected) {
  if (word.load(std::memory_order_acquire) != expected) {
    Counters().immediate_parks.Add(1);
    return false;
  }
#if defined(__linux__)
  if (backend() == Backend::kFutex) {
    bool blocked = FutexWait(&word, expected);
    if (blocked) {
      Counters().parks.Add(1);
    } else {
      Counters().immediate_parks.Add(1);
    }
    return blocked;
  }
#endif
  Bucket& b = BucketFor(&word);
  MutexLock guard(b.mu);
  if (word.load(std::memory_order_acquire) != expected) {
    Counters().immediate_parks.Add(1);
    return false;
  }
  Counters().parks.Add(1);
  // One shot, no predicate: collisions and stray notifies surface as
  // spurious returns, which the contract pushes to the caller's loop.
  b.cv.Wait(b.mu);
  return true;
}

bool ParkingLot::ParkFor(const std::atomic<uint32_t>& word, uint32_t expected,
                         uint64_t timeout_ns) {
  if (word.load(std::memory_order_acquire) != expected) {
    Counters().immediate_parks.Add(1);
    return false;
  }
#if defined(__linux__)
  if (backend() == Backend::kFutex) {
    struct timespec ts;  // FUTEX_WAIT takes a *relative* timeout
    ts.tv_sec = static_cast<time_t>(timeout_ns / 1000000000ull);
    ts.tv_nsec = static_cast<long>(timeout_ns % 1000000000ull);
    bool blocked = FutexWait(&word, expected, &ts);
    if (blocked) {
      Counters().parks.Add(1);
    } else {
      Counters().immediate_parks.Add(1);
    }
    return blocked;
  }
#endif
  Bucket& b = BucketFor(&word);
  MutexLock guard(b.mu);
  if (word.load(std::memory_order_acquire) != expected) {
    Counters().immediate_parks.Add(1);
    return false;
  }
  Counters().parks.Add(1);
  b.cv.WaitFor(b.mu, std::chrono::nanoseconds(timeout_ns));
  return true;
}

void ParkingLot::WakeAll(const std::atomic<uint32_t>& word) {
  Counters().wakes.Add(1);
#if defined(__linux__)
  if (backend() == Backend::kFutex) {
    FutexWake(&word, INT_MAX);
    return;
  }
#endif
  CondvarWake(word);
}

void ParkingLot::WakeOne(const std::atomic<uint32_t>& word) {
  Counters().wakes.Add(1);
#if defined(__linux__)
  if (backend() == Backend::kFutex) {
    FutexWake(&word, 1);
    return;
  }
#endif
  CondvarWake(word);
}

ParkingLot::Stats ParkingLot::stats() {
  Stats s;
  s.parks = Counters().parks.Read();
  s.immediate_parks = Counters().immediate_parks.Read();
  s.wakes = Counters().wakes.Read();
  return s;
}

ParkingLot::Backend ParkingLot::backend() {
  return BackendWord().load(std::memory_order_acquire);
}

void ParkingLot::SetBackendForTest(Backend b) {
  BackendWord().store(b, std::memory_order_release);
}

}  // namespace skeena
