#ifndef SKEENA_COMMON_HISTOGRAM_H_
#define SKEENA_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace skeena {

/// Log-bucketed latency histogram (nanosecond samples).
///
/// Buckets grow geometrically (~4% per bucket) so percentile error stays
/// bounded across the ns..seconds range. One histogram per worker thread is
/// populated without synchronization, then Merge()d by the harness — the same
/// scheme SysBench uses for the latency results in paper Figure 12.
class Histogram {
 public:
  Histogram();

  void Record(uint64_t value_ns);
  void Merge(const Histogram& other);
  void Reset();

  uint64_t count() const { return count_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double Mean() const;

  /// Returns the approximate value at percentile p in [0, 100].
  uint64_t Percentile(double p) const;

  /// Renders count/mean/p50/p95/p99 in milliseconds for reports.
  std::string Summary() const;

 private:
  static constexpr size_t kNumBuckets = 512;
  // Maps a value to its bucket index (monotone in value).
  static size_t BucketFor(uint64_t value_ns);
  // Representative (upper-bound) value of a bucket.
  static uint64_t BucketValue(size_t bucket);

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = ~0ull;
  uint64_t max_ = 0;
};

}  // namespace skeena

#endif  // SKEENA_COMMON_HISTOGRAM_H_
