#include "common/status.h"

namespace skeena {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kSkeenaAbort:
      return "SkeenaAbort";
    case StatusCode::kDeadlock:
      return "Deadlock";
    case StatusCode::kTimedOut:
      return "TimedOut";
    case StatusCode::kBusy:
      return "Busy";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNotSupported:
      return "NotSupported";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  std::string out(StatusCodeToString(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace skeena
