#ifndef SKEENA_COMMON_RANDOM_H_
#define SKEENA_COMMON_RANDOM_H_

#include <cassert>
#include <cmath>
#include <cstdint>

namespace skeena {

/// Fast, seedable PRNG (xorshift128+). One instance per worker thread; not
/// thread-safe by design.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bull) {
    // SplitMix64 seeding to avoid weak states.
    uint64_t z = seed;
    for (int i = 0; i < 2; ++i) {
      z += 0x9e3779b97f4a7c15ull;
      uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
      s_[i] = x ^ (x >> 31);
    }
    if (s_[0] == 0 && s_[1] == 0) s_[0] = 1;
  }

  uint64_t Next() {
    uint64_t x = s_[0];
    const uint64_t y = s_[1];
    s_[0] = y;
    x ^= x << 23;
    s_[1] = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s_[1] + y;
  }

  /// Uniform integer in [0, n).
  uint64_t Uniform(uint64_t n) { return n == 0 ? 0 : Next() % n; }

  /// Uniform integer in [lo, hi] inclusive.
  uint64_t UniformRange(uint64_t lo, uint64_t hi) {
    assert(hi >= lo);
    return lo + Uniform(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// TPC-C NURand non-uniform distribution (clause 2.1.6).
  uint64_t NURand(uint64_t a, uint64_t x, uint64_t y, uint64_t c) {
    return (((UniformRange(0, a) | UniformRange(x, y)) + c) % (y - x + 1)) + x;
  }

 private:
  uint64_t s_[2];
};

/// YCSB-style Zipfian generator over [0, n). Uses the Gray et al. rejection
/// inversion approach with precomputed zeta, matching the generator used by
/// SysBench/YCSB for the skewed-access experiments (paper Section 6.6).
class ZipfianGenerator {
 public:
  ZipfianGenerator(uint64_t n, double theta, uint64_t seed = 42)
      : rng_(seed), n_(n), theta_(theta) {
    assert(n > 0);
    zeta_n_ = Zeta(n, theta);
    zeta2_ = Zeta(2, theta);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2_ / zeta_n_);
  }

  uint64_t Next() {
    double u = rng_.NextDouble();
    double uz = u * zeta_n_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    return static_cast<uint64_t>(
        static_cast<double>(n_) *
        std::pow(eta_ * u - eta_ + 1.0, alpha_));
  }

 private:
  static double Zeta(uint64_t n, double theta) {
    double sum = 0;
    for (uint64_t i = 1; i <= n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    return sum;
  }

  Rng rng_;
  uint64_t n_;
  double theta_;
  double zeta_n_;
  double zeta2_;
  double alpha_;
  double eta_;
};

}  // namespace skeena

#endif  // SKEENA_COMMON_RANDOM_H_
