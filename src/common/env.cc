#include "common/env.h"

#include <cstdlib>
#include <cstring>

namespace skeena {

int64_t GetEnvInt(const char* name, int64_t default_value) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return default_value;
  return std::strtoll(v, nullptr, 10);
}

double GetEnvDouble(const char* name, double default_value) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return default_value;
  return std::strtod(v, nullptr);
}

std::string GetEnvString(const char* name, const std::string& default_value) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return default_value;
  return v;
}

bool GetEnvBool(const char* name, bool default_value) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return default_value;
  return !(std::strcmp(v, "0") == 0 || std::strcmp(v, "false") == 0 ||
           std::strcmp(v, "no") == 0 || std::strcmp(v, "off") == 0);
}

}  // namespace skeena
