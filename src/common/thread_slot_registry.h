#ifndef SKEENA_COMMON_THREAD_SLOT_REGISTRY_H_
#define SKEENA_COMMON_THREAD_SLOT_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.h"

namespace skeena {

/// Shared lifetime protocol for objects that hand per-thread resources
/// ("slots") to threads through thread-local caches — the pattern used by
/// both `EpochManager` (epoch slots) and `ActiveSnapshotRegistry` (snapshot
/// slots). Extracting it here keeps the two protocols structurally
/// identical, so a fix to one cannot silently miss the other.
///
/// Two lifetime hazards arise whenever threads cache owner resources:
///
///  1. **Thread exits first.** Its cached resources must be handed back to
///     the owner, or thread churn leaks slots until the owner's capacity
///     aborts.
///  2. **Owner dies first.** The thread-exit cleanup must NOT touch the
///     dead owner — and the owner's address may since have been reused by a
///     *younger* owner of the same class, whose slots must not be touched
///     either.
///
/// `ThreadSlotDomain` solves both with one liveness map (owner → process-
/// unique generation): owners register at construction and unregister at
/// destruction; thread-exit cleanup runs only `IfLive(owner, gen)`, under
/// the domain mutex, so an owner can never be destroyed mid-cleanup.
///
/// Usage: one (deliberately leaked) domain per owner class,
///
///     ThreadSlotDomain& MyDomain() {
///       static auto* d = new ThreadSlotDomain();  // leaked: thread-exit
///       return *d;                                // cleanup may run after
///     }                                           // static destructors
///
/// plus one `thread_local ThreadSlotEntries<Owner, Payload>` holding the
/// per-thread caches, evicted through the domain on thread exit.
///
/// Epoch/pin preconditions: none of these methods may be called while the
/// calling thread holds a lock the owner's cleanup callback also takes
/// (lock order is always domain mutex → owner-internal mutex). They are
/// cold-path only — owner/thread birth and death — and are safe to call
/// with or without an `EpochGuard` pinned.
class ThreadSlotDomain {
 public:
  ThreadSlotDomain() = default;
  ThreadSlotDomain(const ThreadSlotDomain&) = delete;
  ThreadSlotDomain& operator=(const ThreadSlotDomain&) = delete;

  /// Marks `owner` live and returns its process-unique generation. Call
  /// from the owner's constructor, before any thread can cache entries.
  uint64_t RegisterOwner(const void* owner);

  /// Removes `owner` from the liveness map. Call first thing in the
  /// owner's destructor: after return, no `IfLive` body can be running or
  /// start for it, so the rest of the destructor may tear down freely.
  void UnregisterOwner(const void* owner);

  /// Runs `fn()` under the domain mutex iff (owner, gen) is still
  /// registered; returns whether it ran. `fn` may call back into the owner
  /// (e.g. hand slots back) but must not re-enter the domain.
  template <typename Fn>
  bool IfLive(const void* owner, uint64_t gen, Fn&& fn) {
    MutexLock lock(mu_);
    if (!IsLiveLocked(owner, gen)) return false;
    fn();
    return true;
  }

 private:
  bool IsLiveLocked(const void* owner, uint64_t gen) const
      SKEENA_REQUIRES(mu_);

  mutable Mutex mu_;
  std::unordered_map<const void*, uint64_t> live_ SKEENA_GUARDED_BY(mu_);
  std::atomic<uint64_t> next_gen_{1};
};

/// The thread-local half of the protocol: a small per-thread list mapping
/// (owner, gen) to a cached payload (an epoch slot + nesting depth, a
/// free-slot list, ...). Bounded: callers evict through `Evict` before
/// growing past their cap, and evict everything at thread exit.
///
/// Not thread-safe — each instance is `thread_local` by construction.
template <typename Owner, typename Payload>
class ThreadSlotEntries {
 public:
  struct Entry {
    Owner* owner;
    uint64_t gen;
    Payload payload;
  };

  /// Linear scan (the list holds at most the eviction cap, and the hot
  /// entry is almost always among the first few).
  Entry* Find(Owner* owner, uint64_t gen) {
    for (auto& e : entries_) {
      if (e.owner == owner && e.gen == gen) return &e;
    }
    return nullptr;
  }

  Entry& Add(Owner* owner, uint64_t gen, Payload payload) {
    entries_.push_back(Entry{owner, gen, std::move(payload)});
    return entries_.back();
  }

  size_t size() const { return entries_.size(); }

  /// Evicts every entry for which `keep(entry)` is false: runs
  /// `cleanup(entry)` iff the owner is still live in `domain` (checked and
  /// run under the domain mutex, per entry), then drops the entry. Call
  /// with `keep` ≡ false from the thread-exit destructor, or with a
  /// "still in use" predicate when pruning a full list.
  template <typename Keep, typename Cleanup>
  void Evict(ThreadSlotDomain& domain, Keep keep, Cleanup cleanup) {
    size_t kept = 0;
    for (auto& e : entries_) {
      if (keep(e)) {
        entries_[kept++] = std::move(e);
        continue;
      }
      domain.IfLive(e.owner, e.gen, [&] { cleanup(e); });
    }
    entries_.resize(kept);
  }

 private:
  std::vector<Entry> entries_;
};

}  // namespace skeena

#endif  // SKEENA_COMMON_THREAD_SLOT_REGISTRY_H_
