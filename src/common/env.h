#ifndef SKEENA_COMMON_ENV_H_
#define SKEENA_COMMON_ENV_H_

#include <cstdint>
#include <string>

namespace skeena {

/// Environment-variable helpers used by the benchmark harness so that every
/// experiment can be scaled up toward the paper's full parameters
/// (SKEENA_BENCH_MS, SKEENA_BENCH_CONNS, ...) without recompiling.
int64_t GetEnvInt(const char* name, int64_t default_value);
double GetEnvDouble(const char* name, double default_value);
std::string GetEnvString(const char* name, const std::string& default_value);
bool GetEnvBool(const char* name, bool default_value);

}  // namespace skeena

#endif  // SKEENA_COMMON_ENV_H_
