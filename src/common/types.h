#ifndef SKEENA_COMMON_TYPES_H_
#define SKEENA_COMMON_TYPES_H_

#include <cstdint>
#include <string_view>

namespace skeena {

/// Engine-local logical timestamp. Both engines follow the database model of
/// paper Section 2.2: a monotonically increasing counter per engine; each
/// version carries the commit timestamp of its creating transaction.
using Timestamp = uint64_t;

/// Log sequence number: a byte offset into an engine's log.
using Lsn = uint64_t;

/// Engine-local table identifier.
using TableId = uint32_t;

/// Global (cross-engine) transaction identifier, assigned by the database
/// layer. Used to pair commit-begin / commit-end records across both engines'
/// logs during recovery (paper Section 4.6).
using GlobalTxnId = uint64_t;

inline constexpr Timestamp kInvalidTimestamp = 0;
inline constexpr Timestamp kMaxTimestamp = ~0ull;

/// Which engine a table lives in ("home" engine, paper Section 3).
enum class EngineKind : uint8_t {
  kMem = 0,   // memory-optimized engine (ERMIA-like)
  kStor = 1,  // storage-centric engine (InnoDB-like)
};

inline constexpr int kNumEngines = 2;

inline std::string_view EngineKindToString(EngineKind kind) {
  return kind == EngineKind::kMem ? "mem" : "stor";
}

/// Isolation levels supported for both single- and cross-engine transactions
/// (paper Table 2).
enum class IsolationLevel : uint8_t {
  kReadCommitted = 0,
  kSnapshot = 1,
  kSerializable = 2,
};

inline std::string_view IsolationLevelToString(IsolationLevel iso) {
  switch (iso) {
    case IsolationLevel::kReadCommitted:
      return "read-committed";
    case IsolationLevel::kSnapshot:
      return "snapshot";
    case IsolationLevel::kSerializable:
      return "serializable";
  }
  return "unknown";
}

}  // namespace skeena

#endif  // SKEENA_COMMON_TYPES_H_
