#include "common/epoch.h"

#include <cstdio>
#include <cstdlib>

#include "common/thread_slot_registry.h"

namespace skeena {

namespace {

// Liveness domain so thread-exit cleanup never touches a destroyed manager
// (shared protocol with ActiveSnapshotRegistry — see
// common/thread_slot_registry.h). Touched only at manager/thread birth and
// death — never on the Enter/Exit hot path. Deliberately leaked: thread
// destructors may run after static destructors.
ThreadSlotDomain& EpochDomain() {
  static auto* domain = new ThreadSlotDomain();
  return *domain;
}

}  // namespace

// Per-manager payload cached by a thread: the claimed slot and the guard
// nesting depth. Depth is thread-private; only the outermost Enter/Exit
// publishes to the shared slot. (Named, not anonymous-namespace, so the
// externally declared ThreadEpochState has no internal-linkage subobject.)
struct SlotAndDepth {
  size_t slot;
  uint32_t depth;
};

/// Per-thread view of the managers this thread has entered. On thread exit
/// every claimed slot is handed back (liveness-checked, so manager
/// teardown is safe and address reuse by a younger manager cannot alias).
struct ThreadEpochState {
  ThreadSlotEntries<EpochManager, SlotAndDepth> entries;

  using Entry = ThreadSlotEntries<EpochManager, SlotAndDepth>::Entry;

  ~ThreadEpochState() {
    entries.Evict(
        EpochDomain(), [](const Entry&) { return false; },
        [](Entry& e) { e.owner->ReleaseSlot(e.payload.slot); });
  }

  // Caps the per-thread entry list: a thread that churns through managers
  // (each standalone SnapshotRegistry owns one) would otherwise grow it —
  // and Enter()'s linear scan — without bound. Entries inside a guard
  // (depth > 0) are always kept; idle entries hand their slot back.
  void Prune() {
    entries.Evict(
        EpochDomain(), [](const Entry& e) { return e.payload.depth > 0; },
        [](Entry& e) { e.owner->ReleaseSlot(e.payload.slot); });
  }
};

namespace {
ThreadEpochState& TlsState() {
  thread_local ThreadEpochState state;
  return state;
}
}  // namespace

EpochManager::EpochManager() : gen_(EpochDomain().RegisterOwner(this)) {}

EpochManager::~EpochManager() {
  EpochDomain().UnregisterOwner(this);
  // Contract: no reader is pinned anymore, so everything in limbo is
  // unreachable and can be freed immediately.
  // relaxed-ok: destructor — no concurrent access by contract (and TSA:
  // the limbo_ access needs no lock for the same reason).
  for (const LimboEntry& e : limbo_) e.deleter(e.ptr);
  // relaxed-ok: destructor, single-threaded by the same contract.
  freed_count_.fetch_add(limbo_.size(), std::memory_order_relaxed);
  // relaxed-ok: destructor, single-threaded by the same contract.
  for (auto& chunk : chunks_) delete[] chunk.load(std::memory_order_relaxed);
}

std::atomic<uint64_t>& EpochManager::SlotState(size_t slot) const {
  Slot* chunk = chunks_[slot / kSlotsPerChunk].load(std::memory_order_acquire);
  return chunk[slot % kSlotsPerChunk].value;
}

size_t EpochManager::AcquireSlot() {
  MutexLock lock(slots_mu_);
  if (!free_slots_.empty()) {
    size_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  // relaxed-ok: slot_limit_ is only written under slots_mu_ (held here);
  // the release store below is the publication edge scanners pair with.
  size_t slot = slot_limit_.load(std::memory_order_relaxed);
  if (slot >= kSlotsPerChunk * kMaxChunks) {
    std::fprintf(stderr,
                 "EpochManager: thread slot capacity exhausted (%zu)\n", slot);
    std::abort();
  }
  size_t chunk_idx = slot / kSlotsPerChunk;
  // relaxed-ok: chunk pointers are only installed under slots_mu_.
  if (chunks_[chunk_idx].load(std::memory_order_relaxed) == nullptr) {
    chunks_[chunk_idx].store(new Slot[kSlotsPerChunk],
                             std::memory_order_release);
  }
  // Publish the chunk before the limit so scanners that see the new limit
  // also see the chunk pointer.
  slot_limit_.store(slot + 1, std::memory_order_release);
  return slot;
}

void EpochManager::ReleaseSlot(size_t slot) {
  SlotState(slot).store(0, std::memory_order_release);
  MutexLock lock(slots_mu_);
  free_slots_.push_back(slot);
}

void EpochManager::Enter() {
  ThreadEpochState& tls = TlsState();
  ThreadEpochState::Entry* e = tls.entries.Find(this, gen_);
  if (e == nullptr) {
    constexpr size_t kMaxIdleEntries = 64;
    if (tls.entries.size() >= kMaxIdleEntries) tls.Prune();
    e = &tls.entries.Add(this, gen_, SlotAndDepth{AcquireSlot(), 0});
  }
  if (e->payload.depth++ != 0) return;  // nested guard: already pinned
  std::atomic<uint64_t>& slot = SlotState(e->payload.slot);
  // Pin, then re-check the global epoch: if it moved between the load and
  // the store we would otherwise stay pinned to a stale epoch and stall
  // advancing for as long as the guard lives.
  uint64_t g = global_epoch_.load(std::memory_order_seq_cst);
  slot.store(g * 2 + 1, std::memory_order_seq_cst);
  while (true) {
    uint64_t now = global_epoch_.load(std::memory_order_seq_cst);
    if (now == g) break;
    g = now;
    slot.store(g * 2 + 1, std::memory_order_seq_cst);
  }
}

void EpochManager::Exit() {
  ThreadEpochState::Entry* e = TlsState().entries.Find(this, gen_);
  if (e == nullptr || e->payload.depth == 0) return;  // unmatched: ignore
  if (--e->payload.depth == 0) {
    SlotState(e->payload.slot).store(0, std::memory_order_release);
  }
}

void EpochManager::RetireRaw(void* p, void (*deleter)(void*)) {
  uint64_t e = global_epoch_.load(std::memory_order_seq_cst);
  {
    MutexLock lock(limbo_mu_);
    limbo_.push_back({e, p, deleter});
  }
  TryAdvance();
}

size_t EpochManager::TryAdvance() {
  // Explicit TryLock/Unlock (not a scoped guard): TSA tracks the branch on
  // a TRY_ACQUIRE(true) return value, which a scoped owns_lock() check
  // would hide from it. AdvanceLocked cannot throw.
  if (!advance_mu_.TryLock()) return 0;
  size_t freed = AdvanceLocked();
  advance_mu_.Unlock();
  return freed;
}

size_t EpochManager::AdvanceLocked() {
  uint64_t g = global_epoch_.load(std::memory_order_seq_cst);
  bool all_observed = true;
  size_t limit = slot_limit_.load(std::memory_order_acquire);
  for (size_t i = 0; i < limit; ++i) {
    uint64_t s = SlotState(i).load(std::memory_order_seq_cst);
    if ((s & 1) != 0 && s / 2 != g) {
      all_observed = false;
      break;
    }
  }
  if (all_observed) {
    global_epoch_.store(g + 1, std::memory_order_seq_cst);
    g = g + 1;
  }

  // Free limbo entries two epochs behind: every reader pinned when they
  // were retired has since exited (the epoch advanced twice, and each
  // advance required all pinned readers to be current).
  std::vector<LimboEntry> ripe;
  {
    MutexLock lock(limbo_mu_);
    size_t kept = 0;
    for (LimboEntry& e : limbo_) {
      if (e.epoch + 2 <= g) {
        ripe.push_back(e);
      } else {
        limbo_[kept++] = e;
      }
    }
    limbo_.resize(kept);
  }
  for (const LimboEntry& e : ripe) e.deleter(e.ptr);
  // relaxed-ok: monotone diagnostic counter.
  freed_count_.fetch_add(ripe.size(), std::memory_order_relaxed);
  return ripe.size();
}

size_t EpochManager::RetiredCount() const {
  MutexLock lock(limbo_mu_);
  return limbo_.size();
}

}  // namespace skeena
