#ifndef SKEENA_COMMON_SHARDED_COUNTER_H_
#define SKEENA_COMMON_SHARDED_COUNTER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "common/spin_latch.h"

namespace skeena {

/// A statistics counter sharded across cache-line-padded slots so hot-path
/// increments never contend on a shared cache line: each thread is hashed
/// (via a process-wide thread index) onto its own shard and does a relaxed
/// fetch-add there; Read() folds the shards. Increments are never lost and
/// Read() is monotonic over quiescent points, but a concurrent Read() is
/// only an instantaneous approximation — exactly what stats counters need
/// and nothing more.
class ShardedCounter {
 public:
  ShardedCounter() = default;

  ShardedCounter(const ShardedCounter&) = delete;
  ShardedCounter& operator=(const ShardedCounter&) = delete;

  void Add(uint64_t n) { Shard().fetch_add(n, std::memory_order_relaxed); }

  /// Increments the calling thread's shard and returns that shard's new
  /// value (NOT the folded total). The shard-local value is a cheap
  /// periodic-trigger clock: "every N increments by this thread" without
  /// folding or touching shared state.
  uint64_t Increment() {
    return Shard().fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Folds all shards. O(kShards) relaxed loads.
  uint64_t Read() const {
    uint64_t total = 0;
    for (const auto& s : shards_) {
      total += s.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  static constexpr size_t kShards = 64;
  static_assert((kShards & (kShards - 1)) == 0, "kShards must be power of 2");

  static size_t ThreadShardIndex() {
    static std::atomic<size_t> next{0};
    thread_local size_t idx =
        next.fetch_add(1, std::memory_order_relaxed) & (kShards - 1);
    return idx;
  }

  std::atomic<uint64_t>& Shard() {
    return shards_[ThreadShardIndex()].value;
  }

  Padded<std::atomic<uint64_t>> shards_[kShards];
};

}  // namespace skeena

#endif  // SKEENA_COMMON_SHARDED_COUNTER_H_
