#ifndef SKEENA_COMMON_SHARDED_COUNTER_H_
#define SKEENA_COMMON_SHARDED_COUNTER_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>

#include "common/spin_latch.h"

namespace skeena {

/// A statistics counter sharded across cache-line-padded slots so hot-path
/// increments never contend on a shared cache line: each thread is hashed
/// (via a process-wide thread index) onto its own shard and does a relaxed
/// fetch-add there; Read() folds the shards. Increments are never lost and
/// Read() is monotonic over quiescent points, but a concurrent Read() is
/// only an instantaneous approximation — exactly what stats counters need
/// and nothing more.
///
/// Optionally (constructor opt-in) Read() serves a *tick-refreshed fold
/// cache*: the O(kShards) fold runs at most once per tick and everyone
/// else reads one cached word. Use this for counters polled from paths
/// that run often (reclamation triggers, bench sampling loops); leave it
/// off (default) where tests assert exact post-quiescence values.
class ShardedCounter {
 public:
  ShardedCounter() = default;

  /// `read_cache_ns > 0`: Read() may return a fold up to that many
  /// nanoseconds stale. The cache is monotone (CAS-max of every fold ever
  /// taken), so a cached read never goes below a previously returned
  /// value, and any increment is reflected by every Read() that starts
  /// more than one tick after it.
  explicit ShardedCounter(uint64_t read_cache_ns)
      : read_cache_ns_(read_cache_ns) {}

  ShardedCounter(const ShardedCounter&) = delete;
  ShardedCounter& operator=(const ShardedCounter&) = delete;

  void Add(uint64_t n) { Shard().fetch_add(n, std::memory_order_relaxed); }

  /// Increments the calling thread's shard and returns that shard's new
  /// value (NOT the folded total). The shard-local value is a cheap
  /// periodic-trigger clock: "every N increments by this thread" without
  /// folding or touching shared state.
  uint64_t Increment() {
    return Shard().fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Folds all shards — O(kShards) relaxed loads — or, when a read cache
  /// was configured and its tick has not elapsed, returns the cached fold
  /// (one load). See the constructor for the staleness bound.
  uint64_t Read() const {
    if (read_cache_ns_ == 0) return Fold();
    int64_t now = NowNs();
    int64_t stamp = cache_stamp_.load(std::memory_order_acquire);
    if (stamp != 0 && now - stamp < static_cast<int64_t>(read_cache_ns_)) {
      return cache_value_.value.load(std::memory_order_relaxed);
    }
    uint64_t total = Fold();
    // CAS-max, and return the *resulting* cache value rather than this
    // thread's own fold: a refresher preempted mid-fold may hold a total
    // older than what a faster refresher already published, and returning
    // it would make the counter appear to go backwards across readers.
    uint64_t published = AtomicFetchMax(cache_value_.value, total,
                                        std::memory_order_relaxed);
    cache_stamp_.store(now, std::memory_order_release);
    return published;
  }

 private:
  static constexpr size_t kShards = 64;
  static_assert((kShards & (kShards - 1)) == 0, "kShards must be power of 2");

  uint64_t Fold() const {
    uint64_t total = 0;
    for (const auto& s : shards_) {
      total += s.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  static int64_t NowNs() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  static size_t ThreadShardIndex() {
    static std::atomic<size_t> next{0};
    thread_local size_t idx =
        next.fetch_add(1, std::memory_order_relaxed) & (kShards - 1);
    return idx;
  }

  std::atomic<uint64_t>& Shard() {
    return shards_[ThreadShardIndex()].value;
  }

  const uint64_t read_cache_ns_ = 0;
  mutable Padded<std::atomic<uint64_t>> cache_value_;
  mutable std::atomic<int64_t> cache_stamp_{0};

  Padded<std::atomic<uint64_t>> shards_[kShards];
};

}  // namespace skeena

#endif  // SKEENA_COMMON_SHARDED_COUNTER_H_
