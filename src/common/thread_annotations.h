#ifndef SKEENA_COMMON_THREAD_ANNOTATIONS_H_
#define SKEENA_COMMON_THREAD_ANNOTATIONS_H_

// Clang Thread Safety Analysis (TSA) for Skeena: the locking contracts that
// used to live in comments ("guarded by mu_", "caller holds write_mu_")
// become compile-time-checked attributes. Under clang with
// -Wthread-safety (the SKEENA_THREAD_SAFETY CMake switch turns it on with
// -Werror=thread-safety), a field declared SKEENA_GUARDED_BY(mu_) cannot be
// touched without mu_ held, and a *Locked() helper declared
// SKEENA_REQUIRES(mu_) cannot be called without it. Under GCC (which has no
// TSA) every macro expands to nothing and the wrappers below cost exactly a
// std::mutex / std::shared_mutex / std::condition_variable.
//
// The annotated wrappers are the ONLY place in src/ allowed to declare the
// raw std synchronization types: scripts/check_invariants.py rejects
// std::mutex / std::shared_mutex / std::condition_variable declarations in
// any other file, so a new locking class cannot silently opt out of the
// analysis. See DESIGN.md "Static analysis".
//
// Semantics cheat-sheet (full reference:
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html):
//  * SKEENA_CAPABILITY marks a class as a lockable resource.
//  * SKEENA_GUARDED_BY(mu) on a field: reads and writes require mu.
//  * SKEENA_PT_GUARDED_BY(mu) on a pointer/smart-pointer field: the
//    *pointee* requires mu (the pointer itself does not).
//  * SKEENA_REQUIRES(mu) on a function: caller must hold mu (held on entry
//    and exit). The convention for private helpers named *Locked().
//  * SKEENA_ACQUIRE / SKEENA_RELEASE on a function: it takes / drops mu.
//  * SKEENA_EXCLUDES(mu) on a function: caller must NOT hold mu (deadlock
//    documentation the analysis enforces).
//  * SKEENA_NO_THREAD_SAFETY_ANALYSIS: escape hatch for functions whose
//    protocol the analysis cannot model (adopt/release tricks, conditional
//    locking). Every use must carry a comment saying why.

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define SKEENA_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#ifndef SKEENA_THREAD_ANNOTATION_
#define SKEENA_THREAD_ANNOTATION_(x)  // no-op: GCC and pre-TSA clang
#endif

#define SKEENA_CAPABILITY(x) SKEENA_THREAD_ANNOTATION_(capability(x))
#define SKEENA_SCOPED_CAPABILITY SKEENA_THREAD_ANNOTATION_(scoped_lockable)
#define SKEENA_GUARDED_BY(x) SKEENA_THREAD_ANNOTATION_(guarded_by(x))
#define SKEENA_PT_GUARDED_BY(x) SKEENA_THREAD_ANNOTATION_(pt_guarded_by(x))
#define SKEENA_ACQUIRED_BEFORE(...) \
  SKEENA_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define SKEENA_ACQUIRED_AFTER(...) \
  SKEENA_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))
#define SKEENA_REQUIRES(...) \
  SKEENA_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define SKEENA_REQUIRES_SHARED(...) \
  SKEENA_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))
#define SKEENA_ACQUIRE(...) \
  SKEENA_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define SKEENA_ACQUIRE_SHARED(...) \
  SKEENA_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
#define SKEENA_RELEASE(...) \
  SKEENA_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define SKEENA_RELEASE_SHARED(...) \
  SKEENA_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))
#define SKEENA_RELEASE_GENERIC(...) \
  SKEENA_THREAD_ANNOTATION_(release_generic_capability(__VA_ARGS__))
#define SKEENA_TRY_ACQUIRE(...) \
  SKEENA_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#define SKEENA_TRY_ACQUIRE_SHARED(...) \
  SKEENA_THREAD_ANNOTATION_(try_acquire_shared_capability(__VA_ARGS__))
#define SKEENA_EXCLUDES(...) \
  SKEENA_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
#define SKEENA_ASSERT_CAPABILITY(x) \
  SKEENA_THREAD_ANNOTATION_(assert_capability(x))
#define SKEENA_ASSERT_SHARED_CAPABILITY(x) \
  SKEENA_THREAD_ANNOTATION_(assert_shared_capability(x))
#define SKEENA_RETURN_CAPABILITY(x) SKEENA_THREAD_ANNOTATION_(lock_returned(x))
#define SKEENA_NO_THREAD_SAFETY_ANALYSIS \
  SKEENA_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace skeena {

class CondVar;

/// Annotated exclusive mutex. Same cost as std::mutex; prefer the scoped
/// MutexLock over manual Lock/Unlock pairs.
class SKEENA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() SKEENA_ACQUIRE() { mu_.lock(); }
  void Unlock() SKEENA_RELEASE() { mu_.unlock(); }
  bool TryLock() SKEENA_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// Annotated reader-writer mutex (std::shared_mutex).
class SKEENA_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() SKEENA_ACQUIRE() { mu_.lock(); }
  void Unlock() SKEENA_RELEASE() { mu_.unlock(); }
  bool TryLock() SKEENA_TRY_ACQUIRE(true) { return mu_.try_lock(); }
  void LockShared() SKEENA_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() SKEENA_RELEASE_SHARED() { mu_.unlock_shared(); }
  bool TryLockShared() SKEENA_TRY_ACQUIRE_SHARED(true) {
    return mu_.try_lock_shared();
  }

 private:
  std::shared_mutex mu_;
};

/// Scoped exclusive lock on a Mutex (the std::lock_guard replacement).
class SKEENA_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SKEENA_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() SKEENA_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Scoped exclusive lock that can be dropped before scope exit (the
/// unlock-early half of std::unique_lock; re-locking is deliberately not
/// offered — use a fresh scope).
///
/// There is deliberately no scoped try-lock: TSA tracks `if (mu.TryLock())`
/// branches on the TRY_ACQUIRE(true) return value but cannot see through a
/// scoped guard's owns_lock() — try-lock sites use explicit
/// TryLock()/Unlock() pairs (they never hold across anything that throws).
class SKEENA_SCOPED_CAPABILITY ReleasableMutexLock {
 public:
  explicit ReleasableMutexLock(Mutex& mu) SKEENA_ACQUIRE(mu) : mu_(&mu) {
    mu_->Lock();
  }
  ~ReleasableMutexLock() SKEENA_RELEASE() {
    if (mu_ != nullptr) mu_->Unlock();
  }

  /// Unlocks now; the destructor becomes a no-op.
  void Release() SKEENA_RELEASE() {
    mu_->Unlock();
    mu_ = nullptr;
  }

  ReleasableMutexLock(const ReleasableMutexLock&) = delete;
  ReleasableMutexLock& operator=(const ReleasableMutexLock&) = delete;

 private:
  Mutex* mu_;
};

/// Scoped exclusive lock on a SharedMutex.
class SKEENA_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) SKEENA_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterMutexLock() SKEENA_RELEASE() { mu_.Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Scoped shared (reader) lock on a SharedMutex.
class SKEENA_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) SKEENA_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderMutexLock() SKEENA_RELEASE_SHARED() { mu_.UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable working with the annotated Mutex. Every wait takes
/// the Mutex itself (not a lock object) and is annotated REQUIRES(mu): the
/// analysis checks the caller holds the mutex across the wait, which is
/// also the documentation convention — "waits are stated against the mutex
/// they release".
///
/// NOTE for EpochGuard discipline: all Wait* methods are blocking waits;
/// scripts/check_invariants.py rejects calls with an EpochGuard live (the
/// docs/RECLAMATION.md pin rule).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks, and re-acquires `mu` before
  /// returning. Spurious wakeups possible — loop on the predicate.
  void Wait(Mutex& mu) SKEENA_REQUIRES(mu) SKEENA_NO_THREAD_SAFETY_ANALYSIS {
    // Adopt/release so the wait drives the raw std::mutex without a second
    // lock object; the net lock state is unchanged, which is exactly what
    // REQUIRES promises — TSA cannot see through the adopt, hence the
    // no-analysis escape on the implementation only.
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    cv_.wait(lk);
    lk.release();
  }

  template <typename Pred>
  void Wait(Mutex& mu, Pred&& pred) SKEENA_REQUIRES(mu) {
    while (!pred()) Wait(mu);
  }

  /// Timed wait; returns false on timeout (predicate-less form mirrors
  /// std::cv_status, predicate form re-checks like std).
  template <typename Rep, typename Period>
  bool WaitFor(Mutex& mu, const std::chrono::duration<Rep, Period>& dur)
      SKEENA_REQUIRES(mu) SKEENA_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    bool ok = cv_.wait_for(lk, dur) == std::cv_status::no_timeout;
    lk.release();
    return ok;
  }

  template <typename Rep, typename Period, typename Pred>
  bool WaitFor(Mutex& mu, const std::chrono::duration<Rep, Period>& dur,
               Pred&& pred) SKEENA_REQUIRES(mu)
      SKEENA_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    bool ok = cv_.wait_for(lk, dur, std::forward<Pred>(pred));
    lk.release();
    return ok;
  }

  template <typename Clock, typename Duration>
  bool WaitUntil(Mutex& mu,
                 const std::chrono::time_point<Clock, Duration>& deadline)
      SKEENA_REQUIRES(mu) SKEENA_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    bool ok = cv_.wait_until(lk, deadline) == std::cv_status::no_timeout;
    lk.release();
    return ok;
  }

  template <typename Clock, typename Duration, typename Pred>
  bool WaitUntil(Mutex& mu,
                 const std::chrono::time_point<Clock, Duration>& deadline,
                 Pred&& pred) SKEENA_REQUIRES(mu)
      SKEENA_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    bool ok = cv_.wait_until(lk, deadline, std::forward<Pred>(pred));
    lk.release();
    return ok;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace skeena

#endif  // SKEENA_COMMON_THREAD_ANNOTATIONS_H_
