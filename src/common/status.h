#ifndef SKEENA_COMMON_STATUS_H_
#define SKEENA_COMMON_STATUS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

namespace skeena {

/// Error categories used throughout the library.
///
/// `kAborted` covers engine-level concurrency-control aborts (write-write
/// conflicts, failed OCC validation). `kSkeenaAbort` is reserved for aborts
/// caused by the cross-engine coordinator itself: a snapshot-selection or
/// commit-check failure in the CSR (paper Section 4.2), or a mapping that
/// would land in a sealed CSR partition (Section 4.3). Keeping the two apart
/// lets the abort-rate experiments (Section 6.9) attribute aborts precisely.
enum class StatusCode : uint8_t {
  kOk = 0,
  kNotFound,
  kAlreadyExists,
  kAborted,
  kSkeenaAbort,
  kDeadlock,
  kTimedOut,
  kBusy,
  kInvalidArgument,
  kIOError,
  kCorruption,
  kNotSupported,
};

/// Returns a stable human-readable name for a status code.
std::string_view StatusCodeToString(StatusCode code);

/// Lightweight status object in the RocksDB/Arrow style: cheap to pass by
/// value, `ok()` on the hot path is a single byte comparison, and messages
/// are only materialized on error paths.
class Status {
 public:
  Status() = default;

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg = "") {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg = "") {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Aborted(std::string msg = "") {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status SkeenaAbort(std::string msg = "") {
    return Status(StatusCode::kSkeenaAbort, std::move(msg));
  }
  static Status Deadlock(std::string msg = "") {
    return Status(StatusCode::kDeadlock, std::move(msg));
  }
  static Status TimedOut(std::string msg = "") {
    return Status(StatusCode::kTimedOut, std::move(msg));
  }
  static Status Busy(std::string msg = "") {
    return Status(StatusCode::kBusy, std::move(msg));
  }
  static Status InvalidArgument(std::string msg = "") {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status IOError(std::string msg = "") {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg = "") {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg = "") {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsSkeenaAbort() const { return code_ == StatusCode::kSkeenaAbort; }
  bool IsDeadlock() const { return code_ == StatusCode::kDeadlock; }

  /// True for any transaction-abort flavour (engine, coordinator, deadlock).
  /// Callers use this to decide whether a transaction can simply be retried.
  bool IsAnyAbort() const {
    return code_ == StatusCode::kAborted || code_ == StatusCode::kSkeenaAbort ||
           code_ == StatusCode::kDeadlock || code_ == StatusCode::kTimedOut;
  }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "code: message" for logs and test failure output.
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// A value-or-Status result, in the Arrow style. `Result<T>` keeps error
/// propagation explicit without exceptions on database hot paths.
template <typename T>
class Result {
 public:
  /* implicit */ Result(T value) : value_(std::move(value)) {}
  /* implicit */ Result(Status status) : status_(std::move(status)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& { return value_; }
  T& value() & { return value_; }
  T&& value() && { return std::move(value_); }

  const T& operator*() const& { return value_; }
  T& operator*() & { return value_; }
  const T* operator->() const { return &value_; }
  T* operator->() { return &value_; }

 private:
  Status status_;
  T value_{};
};

}  // namespace skeena

/// Propagates a non-OK Status out of the current function.
#define SKEENA_RETURN_NOT_OK(expr)              \
  do {                                          \
    ::skeena::Status _st = (expr);              \
    if (!_st.ok()) return _st;                  \
  } while (0)

#endif  // SKEENA_COMMON_STATUS_H_
