#include "common/histogram.h"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace skeena {

Histogram::Histogram() : buckets_(kNumBuckets, 0) {}

// Bucketing: 16 sub-buckets per power of two. For a value v with highest set
// bit b, the bucket is 16*b + (next 4 bits). This gives <= 6.25% relative
// bucket width everywhere.
size_t Histogram::BucketFor(uint64_t v) {
  if (v < 16) return static_cast<size_t>(v);
  int b = 63 - std::countl_zero(v);
  uint64_t sub = (v >> (b - 4)) & 0xf;
  size_t idx = static_cast<size_t>(b - 3) * 16 + static_cast<size_t>(sub);
  return std::min(idx, kNumBuckets - 1);
}

uint64_t Histogram::BucketValue(size_t bucket) {
  if (bucket < 16) return bucket;
  size_t b = bucket / 16 + 3;
  uint64_t sub = bucket % 16;
  // Upper edge of the bucket.
  return ((16ull + sub + 1) << (b - 4)) - 1;
}

void Histogram::Record(uint64_t value_ns) {
  buckets_[BucketFor(value_ns)]++;
  count_++;
  sum_ += value_ns;
  min_ = std::min(min_, value_ns);
  max_ = std::max(max_, value_ns);
}

void Histogram::Merge(const Histogram& other) {
  for (size_t i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = ~0ull;
  max_ = 0;
}

double Histogram::Mean() const {
  return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
}

uint64_t Histogram::Percentile(double p) const {
  if (count_ == 0) return 0;
  uint64_t rank = static_cast<uint64_t>(p / 100.0 * static_cast<double>(count_));
  if (rank >= count_) rank = count_ - 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i];
    if (seen > rank) return std::min(BucketValue(i), max_);
  }
  return max_;
}

std::string Histogram::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%llu mean=%.3fms p50=%.3fms p95=%.3fms p99=%.3fms",
                static_cast<unsigned long long>(count_), Mean() / 1e6,
                static_cast<double>(Percentile(50)) / 1e6,
                static_cast<double>(Percentile(95)) / 1e6,
                static_cast<double>(Percentile(99)) / 1e6);
  return buf;
}

}  // namespace skeena
