#ifndef SKEENA_COMMON_ENCODING_H_
#define SKEENA_COMMON_ENCODING_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace skeena {

/// Fixed-width, binary-comparable index key.
///
/// All engine indexes and the CSR use 16-byte keys whose byte-wise
/// lexicographic order equals the logical key order. Integers are encoded
/// big-endian; composite keys append fields most-significant first. 16 bytes
/// is enough for every key in the paper's workloads (YCSB-like row ids and
/// all TPC-C primary/secondary keys).
using Key = std::array<uint8_t, 16>;

inline constexpr Key kMinKey = {};

inline Key MaxKey() {
  Key k;
  k.fill(0xff);
  return k;
}

/// Incrementally builds a binary-comparable Key from big-endian fields.
/// Unused trailing bytes stay zero so that a prefix-only key is the smallest
/// key with that prefix (useful as a range-scan lower bound).
class KeyBuilder {
 public:
  KeyBuilder() { key_.fill(0); }

  KeyBuilder& AppendU8(uint8_t v) {
    key_[pos_++] = v;
    return *this;
  }

  KeyBuilder& AppendU16(uint16_t v) {
    key_[pos_++] = static_cast<uint8_t>(v >> 8);
    key_[pos_++] = static_cast<uint8_t>(v);
    return *this;
  }

  KeyBuilder& AppendU32(uint32_t v) {
    for (int shift = 24; shift >= 0; shift -= 8) {
      key_[pos_++] = static_cast<uint8_t>(v >> shift);
    }
    return *this;
  }

  KeyBuilder& AppendU64(uint64_t v) {
    for (int shift = 56; shift >= 0; shift -= 8) {
      key_[pos_++] = static_cast<uint8_t>(v >> shift);
    }
    return *this;
  }

  /// Appends a 64-bit stable hash of `s` (FNV-1a). Used to index variable
  /// length strings (e.g., TPC-C customer last names) inside the fixed-width
  /// key space; equal strings map to equal bytes, enabling prefix scans.
  KeyBuilder& AppendHash64(std::string_view s) {
    uint64_t h = 1469598103934665603ull;
    for (unsigned char c : s) {
      h ^= c;
      h *= 1099511628211ull;
    }
    return AppendU64(h);
  }

  const Key& Build() const { return key_; }
  size_t size() const { return pos_; }

 private:
  Key key_;
  size_t pos_ = 0;
};

/// Convenience: a key whose first 8 bytes encode `v` big-endian.
inline Key MakeKey(uint64_t v) {
  KeyBuilder b;
  b.AppendU64(v);
  return b.Build();
}

/// Decodes the first 8 bytes of a key as a big-endian uint64.
inline uint64_t KeyPrefixU64(const Key& k) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | k[i];
  return v;
}

/// True if `k` starts with the first `prefix_len` bytes of `prefix`.
inline bool KeyHasPrefix(const Key& k, const Key& prefix, size_t prefix_len) {
  return std::memcmp(k.data(), prefix.data(), prefix_len) == 0;
}

// -- Little helpers for serializing row payloads ----------------------------

inline void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

inline uint64_t GetU64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

inline void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

inline uint32_t GetU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

}  // namespace skeena

#endif  // SKEENA_COMMON_ENCODING_H_
