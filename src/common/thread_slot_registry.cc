#include "common/thread_slot_registry.h"

namespace skeena {

uint64_t ThreadSlotDomain::RegisterOwner(const void* owner) {
  // relaxed-ok: gen only needs uniqueness; the mutex below publishes it.
  uint64_t gen = next_gen_.fetch_add(1, std::memory_order_relaxed);
  MutexLock lock(mu_);
  live_[owner] = gen;
  return gen;
}

void ThreadSlotDomain::UnregisterOwner(const void* owner) {
  MutexLock lock(mu_);
  live_.erase(owner);
}

bool ThreadSlotDomain::IsLiveLocked(const void* owner, uint64_t gen) const {
  auto it = live_.find(owner);
  return it != live_.end() && it->second == gen;
}

}  // namespace skeena
