#ifndef SKEENA_COMMON_PARKING_LOT_H_
#define SKEENA_COMMON_PARKING_LOT_H_

#include <atomic>
#include <cstdint>

#include "common/spin_latch.h"

namespace skeena {

/// Futex-style parking lot: threads block ("park") on a 32-bit word and are
/// released by a single wake issued after the word (or the waiters'
/// predicate) changes. This is the kernel-synchronization primitive behind
/// the commit pipeline's batched wakeups and the log manager's durable-LSN
/// waits — it replaces per-waiter mutex+condvar round-trips with at most
/// one syscall per *event*, and none at all when nobody is parked.
///
/// Protocol (the futex(2) contract):
///  * `Park(word, expected)` blocks only while `word == expected`, checked
///    atomically against concurrent wakes; it returns immediately when the
///    word already moved, and may return spuriously — callers always
///    recheck their predicate in a loop.
///  * Wakers must change the word (or the state the waiters' predicate
///    reads, ordered before a bump of the word) *before* calling
///    `WakeOne/WakeAll`, otherwise a concurrent Park can sleep through the
///    wake.
///
/// Backends: `futex(2)` on Linux; elsewhere — or when forced via
/// `SetBackendForTest` / SKEENA_PARKING_FALLBACK=1 — a static hashed table
/// of mutex+condvar buckets keyed by word address. Bucket collisions only
/// add spurious wakes, which the protocol already tolerates.
class ParkingLot {
 public:
  enum class Backend { kFutex, kCondvar };

  /// Process-wide counters (sharded; relaxed increments, folded on read).
  struct Stats {
    uint64_t parks = 0;            // kernel-blocking park attempts
    uint64_t immediate_parks = 0;  // Park() returned without blocking
    uint64_t wakes = 0;            // WakeOne/WakeAll calls issued
  };

  /// Blocks the calling thread while `word == expected` (see protocol
  /// above). Spurious returns allowed; recheck and re-park. Returns true
  /// iff the thread actually blocked in the kernel; false when the word
  /// had already moved (pre-check or the futex's atomic EAGAIN check).
  static bool Park(const std::atomic<uint32_t>& word, uint32_t expected);

  /// Park with a relative timeout. Same contract as Park plus: returns
  /// after ~`timeout_ns` even if nobody woke the word (indistinguishable
  /// from a spurious wake — callers recheck their predicate either way).
  /// Return value matches Park: true iff the thread actually blocked.
  static bool ParkFor(const std::atomic<uint32_t>& word, uint32_t expected,
                      uint64_t timeout_ns);

  /// Wakes every thread parked on `word`.
  static void WakeAll(const std::atomic<uint32_t>& word);

  /// Wakes at least one thread parked on `word` — exactly one on the futex
  /// backend; the condvar fallback wakes the whole bucket (a single notify
  /// could land on a colliding word's waiter, which would re-park and
  /// swallow the wake). Treat it as a contention hint, not a contract.
  static void WakeOne(const std::atomic<uint32_t>& word);

  static Stats stats();

  static Backend backend();
  /// Test hook: swaps the backend process-wide. Calling it while any thread
  /// is parked is undefined (a futex-parked thread cannot be condvar-woken).
  static void SetBackendForTest(Backend b);
};

/// Spins up to `iters` pause iterations waiting for `pred()`; returns true
/// on success, false when the caller should fall back to parking. The
/// budget is deliberately tiny: it covers the "completer is one cache miss
/// away" window, not a scheduling quantum.
template <typename Pred>
inline bool SpinUntil(Pred&& pred, int iters = 128) {
  for (int i = 0; i < iters; ++i) {
    if (pred()) return true;
    CpuRelax();
  }
  return pred();
}

}  // namespace skeena

#endif  // SKEENA_COMMON_PARKING_LOT_H_
