#ifndef SKEENA_COMMON_SPIN_LATCH_H_
#define SKEENA_COMMON_SPIN_LATCH_H_

#include <atomic>

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace skeena {

inline void CpuRelax() {
#if defined(__x86_64__)
  _mm_pause();
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

/// Tiny test-and-test-and-set spin latch. Used where hold times are a few
/// dozen instructions (version-chain installs, allocation lists); everything
/// longer uses std::mutex / std::shared_mutex.
class SpinLatch {
 public:
  SpinLatch() = default;
  SpinLatch(const SpinLatch&) = delete;
  SpinLatch& operator=(const SpinLatch&) = delete;

  void lock() {
    while (true) {
      if (!locked_.exchange(true, std::memory_order_acquire)) return;
      while (locked_.load(std::memory_order_relaxed)) CpuRelax();
    }
  }

  bool try_lock() {
    return !locked_.load(std::memory_order_relaxed) &&
           !locked_.exchange(true, std::memory_order_acquire);
  }

  void unlock() { locked_.store(false, std::memory_order_release); }

  bool is_locked() const { return locked_.load(std::memory_order_acquire); }

 private:
  std::atomic<bool> locked_{false};
};

/// Pads T to a cache line to avoid false sharing in per-thread arrays.
template <typename T>
struct alignas(64) Padded {
  T value{};
};

/// Monotone CAS-max: raises `target` to at least `value` and returns the
/// resulting maximum (never less than either input). Idempotent across
/// racing callers — the shared helper behind the engines' GC floors and
/// the ShardedCounter fold cache, so the loop's subtleties live once.
template <typename T>
inline T AtomicFetchMax(std::atomic<T>& target, T value,
                        std::memory_order success_order) {
  T cur = target.load(std::memory_order_relaxed);
  while (cur < value && !target.compare_exchange_weak(
                            cur, value, success_order,
                            std::memory_order_relaxed)) {
  }
  return cur < value ? value : cur;
}

}  // namespace skeena

#endif  // SKEENA_COMMON_SPIN_LATCH_H_
