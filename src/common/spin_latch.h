#ifndef SKEENA_COMMON_SPIN_LATCH_H_
#define SKEENA_COMMON_SPIN_LATCH_H_

#include <atomic>

#include "common/thread_annotations.h"

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace skeena {

inline void CpuRelax() {
#if defined(__x86_64__)
  _mm_pause();
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

/// Tiny test-and-test-and-set spin latch. Used where hold times are a few
/// dozen instructions (version-chain installs, allocation lists); everything
/// longer uses the annotated Mutex/SharedMutex wrappers. A capability like
/// them: fields it guards take SKEENA_GUARDED_BY(latch) and helpers that
/// assume it take SKEENA_REQUIRES(latch). Keeps the std lowercase
/// lock()/unlock() names so std::lock_guard<SpinLatch> still compiles, but
/// prefer SpinLatchGuard — the scoped form TSA can track.
class SKEENA_CAPABILITY("spin_latch") SpinLatch {
 public:
  SpinLatch() = default;
  SpinLatch(const SpinLatch&) = delete;
  SpinLatch& operator=(const SpinLatch&) = delete;

  void lock() SKEENA_ACQUIRE() {
    while (true) {
      if (!locked_.exchange(true, std::memory_order_acquire)) return;
      // relaxed-ok: pure spin-test; the winning exchange above is the
      // acquire that orders the critical section.
      while (locked_.load(std::memory_order_relaxed)) CpuRelax();
    }
  }

  bool try_lock() SKEENA_TRY_ACQUIRE(true) {
    // relaxed-ok: contention pre-check only; the exchange is the acquire.
    return !locked_.load(std::memory_order_relaxed) &&
           !locked_.exchange(true, std::memory_order_acquire);
  }

  void unlock() SKEENA_RELEASE() {
    locked_.store(false, std::memory_order_release);
  }

  bool is_locked() const { return locked_.load(std::memory_order_acquire); }

 private:
  std::atomic<bool> locked_{false};
};

/// Scoped SpinLatch holder (the annotated std::lock_guard<SpinLatch>).
class SKEENA_SCOPED_CAPABILITY SpinLatchGuard {
 public:
  explicit SpinLatchGuard(SpinLatch& latch) SKEENA_ACQUIRE(latch)
      : latch_(latch) {
    latch_.lock();
  }
  ~SpinLatchGuard() SKEENA_RELEASE() { latch_.unlock(); }

  SpinLatchGuard(const SpinLatchGuard&) = delete;
  SpinLatchGuard& operator=(const SpinLatchGuard&) = delete;

 private:
  SpinLatch& latch_;
};

/// Pads T to a cache line to avoid false sharing in per-thread arrays.
template <typename T>
struct alignas(64) Padded {
  T value{};
};

/// Monotone CAS-max: raises `target` to at least `value` and returns the
/// resulting maximum (never less than either input). Idempotent across
/// racing callers — the shared helper behind the engines' GC floors and
/// the ShardedCounter fold cache, so the loop's subtleties live once.
template <typename T>
inline T AtomicFetchMax(std::atomic<T>& target, T value,
                        std::memory_order success_order) {
  // relaxed-ok: pre-read and CAS-failure reload only seed the retry loop;
  // the caller-chosen success_order is the publication edge.
  T cur = target.load(std::memory_order_relaxed);
  while (cur < value && !target.compare_exchange_weak(
                            cur, value, success_order,
                            std::memory_order_relaxed)) {  // relaxed-ok: ^
  }
  return cur < value ? value : cur;
}

}  // namespace skeena

#endif  // SKEENA_COMMON_SPIN_LATCH_H_
