#ifndef SKEENA_REPL_CHANNEL_H_
#define SKEENA_REPL_CHANNEL_H_

// Blocking-socket transport for the replication stream
// (docs/REPLICATION.md). Frames reuse the SKNA header and extraction from
// server/wire.h; one ReplChannel wraps one connected fd. Each end drives
// its channel from a single thread (the shipper's per-connection serve
// loop, the replica's run loop), so buffers need no locking — only
// Shutdown() is cross-thread, used by Stop()/KillChannel() to break a
// blocked Send/Recv.

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "server/wire.h"

namespace skeena::repl {

class ReplChannel {
 public:
  ReplChannel() = default;
  ~ReplChannel();

  ReplChannel(const ReplChannel&) = delete;
  ReplChannel& operator=(const ReplChannel&) = delete;

  /// Connects to host:port (IPv4 dotted quad) with TCP_NODELAY. Any
  /// previous connection is closed first.
  Status ConnectTo(const std::string& host, uint16_t port);

  /// Takes ownership of an already-accepted fd (shipper side).
  void Adopt(int fd);

  bool connected() const {
    return fd_.load(std::memory_order_acquire) >= 0;
  }

  /// Writes the whole frame (handles partial sends / EINTR; MSG_NOSIGNAL).
  Status Send(std::string_view frame);

  /// Blocks until one complete frame is parsed. IOError on peer close or
  /// Shutdown(); Corruption on a framing violation (the stream cannot be
  /// resynchronized — the caller must drop the connection).
  Status Recv(server::Frame* frame);

  /// Non-blocking drain: parses a buffered frame or reads whatever the
  /// socket already has. Returns true with *frame filled when a complete
  /// frame was available. On stream failure returns false with *error set
  /// to non-OK; otherwise *error is OK (just no frame yet).
  bool TryRecv(server::Frame* frame, Status* error);

  /// Thread-safe: fails any blocked Send/Recv on this channel. The fd is
  /// reclaimed by Close()/destructor on the owning thread.
  void Shutdown();

  /// Closes the fd and discards buffered partial input (a killed
  /// connection's torn frame must not leak into the next session).
  void Close();

 private:
  std::atomic<int> fd_{-1};
  std::string inbuf_;
};

/// Listening socket for the shipper (port 0 = kernel-assigned, read back
/// via port()). Accept() blocks until a connection arrives or Shutdown().
class ReplListener {
 public:
  ReplListener() = default;
  ~ReplListener();

  ReplListener(const ReplListener&) = delete;
  ReplListener& operator=(const ReplListener&) = delete;

  Status Listen(uint16_t port);
  /// Returns an accepted fd (TCP_NODELAY set), or -1 after Shutdown().
  int Accept();
  uint16_t port() const { return port_; }

  void Shutdown();
  void Close();

 private:
  std::atomic<int> fd_{-1};
  uint16_t port_ = 0;
};

}  // namespace skeena::repl

#endif  // SKEENA_REPL_CHANNEL_H_
