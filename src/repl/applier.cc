#include "repl/applier.h"

#include <algorithm>

namespace skeena::repl {

namespace {
constexpr int kMemIndex = static_cast<int>(EngineKind::kMem);
constexpr int kStorIndex = static_cast<int>(EngineKind::kStor);
}  // namespace

Replica::Replica(Database* db, Options options)
    : db_(db), options_(options) {
  db_->SetReplicaSnapshotProvider([this] { return GatePair(); });
}

Replica::~Replica() { Stop(); }

Status Replica::Start() {
  if (!db_->replica()) {
    return Status::InvalidArgument(
        "Replica requires DatabaseOptions::replica = true");
  }
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { RunLoop(); });
  return Status::OK();
}

void Replica::Stop() {
  stop_.store(true, std::memory_order_release);
  ch_.Shutdown();
  if (thread_.joinable()) thread_.join();
}

void Replica::KillChannel() { ch_.Shutdown(); }

std::pair<Timestamp, Timestamp> Replica::GatePair() const {
  MutexLock guard(gate_mu_);
  return {gate_anchor_, gate_other_};
}

Replica::Progress Replica::progress() const {
  MutexLock guard(mu_);
  Progress p;
  for (int e = 0; e < kNumEngines; ++e) {
    p.recv_lsn[e] = recv_lsn_[e];
    p.applied_horizon[e] = applied_horizon_[e];
  }
  p.csr_seq = csr_seq_;
  p.watermarks = watermarks_;
  p.reconnects = reconnects_;
  p.groups_applied = groups_applied_;
  return p;
}

bool Replica::CaughtUpLocked(Lsn mem_lsn, Lsn stor_lsn,
                             uint64_t csr_seq) const {
  if (recv_lsn_[kMemIndex] < mem_lsn) return false;
  if (recv_lsn_[kStorIndex] < stor_lsn) return false;
  if (csr_seq_ < csr_seq) return false;
  if (applying_) return false;
  for (int e = 0; e < kNumEngines; ++e) {
    if (!ready_[e].empty()) return false;
  }
  return true;
}

bool Replica::WaitCaughtUp(Lsn mem_lsn, Lsn stor_lsn, uint64_t csr_seq,
                           std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  MutexLock lock(mu_);
  // Explicit wait loop (not the predicate overload): TSA analyzes a lambda
  // body without the enclosing lock set, so a predicate reading guarded
  // fields would trip -Wthread-safety.
  while (!CaughtUpLocked(mem_lsn, stor_lsn, csr_seq)) {
    if (!cv_.WaitUntil(mu_, deadline)) {
      return CaughtUpLocked(mem_lsn, stor_lsn, csr_seq);
    }
  }
  return true;
}

void Replica::RunLoop() {
  bool connected_once = false;
  while (!stop_.load(std::memory_order_acquire)) {
    Status s = ch_.ConnectTo(options_.host, options_.port);
    if (!s.ok()) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(options_.reconnect_interval_us));
      continue;
    }
    if (connected_once) {
      MutexLock guard(mu_);
      ++reconnects_;
    }
    connected_once = true;
    RunSession();
    // Close discards any torn partial frame; the HELLO cursors only name
    // fully received frames, so the tail is simply re-shipped.
    ch_.Close();
    if (!stop_.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(options_.reconnect_interval_us));
    }
  }
}

void Replica::RunSession() {
  uint64_t rid = 1;
  server::ReplHello hello;
  hello.version = server::kProtocolVersion;
  {
    MutexLock guard(mu_);
    hello.mem_lsn = recv_lsn_[kMemIndex];
    hello.stor_lsn = recv_lsn_[kStorIndex];
    hello.csr_seq = csr_seq_;
  }
  if (!ch_.Send(server::EncodeReplHello(rid++, hello)).ok()) return;
  server::Frame f;
  if (!ch_.Recv(&f).ok() ||
      f.opcode != static_cast<uint8_t>(server::Op::kReplHelloOk)) {
    return;
  }
  while (!stop_.load(std::memory_order_acquire)) {
    if (!ch_.Recv(&f).ok()) return;
    Status s = Status::OK();
    switch (static_cast<server::Op>(f.opcode)) {
      case server::Op::kReplLog: {
        server::ReplLogBatch batch;
        if (!server::DecodeReplLogBody(f.body, &batch)) {
          s = Status::Corruption("mangled REPL_LOG");
        } else {
          s = HandleLog(batch);
        }
        break;
      }
      case server::Op::kReplCsr: {
        server::ReplCsrBatch batch;
        if (!server::DecodeReplCsrBody(f.body, &batch)) {
          s = Status::Corruption("mangled REPL_CSR");
        } else {
          s = HandleCsr(batch);
        }
        break;
      }
      case server::Op::kReplWatermark: {
        server::ReplWatermark wm;
        if (!server::DecodeReplWatermarkBody(f.body, &wm)) {
          s = Status::Corruption("mangled REPL_WATERMARK");
        } else {
          s = HandleWatermark(wm, &rid);
        }
        break;
      }
      default:
        s = Status::Corruption("unexpected replication opcode");
    }
    // Any stream-level fault drops the session; the reconnect resumes
    // from the received cursors and re-ships the suspect range.
    if (!s.ok()) return;
  }
}

Status Replica::HandleLog(const server::ReplLogBatch& batch) {
  if (batch.engine >= kNumEngines) {
    return Status::Corruption("bad engine index");
  }
  int e = batch.engine;
  {
    MutexLock guard(mu_);
    if (batch.start_lsn != recv_lsn_[e]) {
      return Status::Corruption("non-contiguous REPL_LOG batch");
    }
  }
  for (const std::string& raw : batch.records) {
    LogRecord rec;
    if (!LogRecord::Decode(raw, &rec)) {
      return Status::Corruption("undecodable shipped log record");
    }
    switch (rec.type) {
      case LogRecordType::kData:
        pending_[e][rec.gtid].push_back(std::move(rec));
        break;
      case LogRecordType::kCommitBegin:
        break;  // pre-commit marker; the kCommitEnd closes the group
      case LogRecordType::kCommit:
      case LogRecordType::kCommitEnd: {
        auto it = pending_[e].find(rec.gtid);
        if (it == pending_[e].end() || it->second.empty()) {
          // Read-only commit record (borrowed, possibly colliding cts) —
          // nothing to apply.
          if (it != pending_[e].end()) pending_[e].erase(it);
          break;
        }
        std::vector<LogRecord> group = std::move(it->second);
        pending_[e].erase(it);
        MutexLock guard(mu_);
        auto ins = ready_[e].emplace(
            rec.cts, std::make_pair(rec.gtid, std::move(group)));
        if (!ins.second) {
          return Status::Corruption("duplicate commit timestamp in stream");
        }
        break;
      }
    }
  }
  {
    MutexLock guard(mu_);
    recv_lsn_[e] = batch.end_lsn;
  }
  cv_.NotifyAll();
  return Status::OK();
}

Status Replica::HandleCsr(const server::ReplCsrBatch& batch) {
  uint64_t applied;  // stable across the loop: only this thread writes it
  {
    MutexLock guard(mu_);
    applied = csr_seq_;
  }
  if (batch.first_seq > applied) {
    return Status::Corruption("gap in CSR install stream");
  }
  uint64_t seq = batch.first_seq;
  for (const auto& [key, value] : batch.entries) {
    if (seq++ < applied) continue;  // overlap after resume; already applied
    SKEENA_RETURN_NOT_OK(db_->csr().ReplayInstall(key, value));
    auto it = gate_mappings_.find(key);
    if (it == gate_mappings_.end()) {
      gate_mappings_.emplace(key, std::make_pair(value, value));
    } else {
      it->second.first = std::min(it->second.first, value);
      it->second.second = std::max(it->second.second, value);
    }
  }
  {
    MutexLock guard(mu_);
    csr_seq_ = std::max(csr_seq_, seq);
  }
  cv_.NotifyAll();
  return Status::OK();
}

Status Replica::ApplyGroup(int e, GlobalTxnId gtid, Timestamp cts,
                           const std::vector<LogRecord>& records) {
  if (e == kMemIndex) {
    return db_->mem()->engine()->ApplyReplicated(gtid, cts, records);
  }
  stordb::StorEngine* stor = db_->stor()->engine();
  auto txn = stor->Begin(IsolationLevel::kSnapshot, kMaxTimestamp);
  if (!txn) return Status::IOError("replica stordb Begin failed");
  for (const LogRecord& rec : records) {
    Status s;
    if (rec.tombstone) {
      s = stor->Delete(txn.get(), rec.table, rec.key);
      // A row inserted and deleted within one primary transaction ships
      // only its final tombstone; the key never existed here.
      if (s.IsNotFound()) s = Status::OK();
    } else {
      s = stor->Put(txn.get(), rec.table, rec.key, rec.value);
    }
    if (!s.ok()) {
      stor->Abort(txn.get());
      return s;
    }
  }
  stor->CommitReplicated(txn.get(), gtid, cts);
  return Status::OK();
}

Status Replica::HandleWatermark(const server::ReplWatermark& wm,
                                uint64_t* rid) {
  Timestamp horizon[kNumEngines];
  horizon[kMemIndex] = wm.mem_horizon;
  horizon[kStorIndex] = wm.stor_horizon;

  // Extract coverable groups under the lock, apply outside it: the
  // engines' GC floor providers re-enter GatePair() during apply.
  std::vector<std::pair<GlobalTxnId, std::vector<LogRecord>>>
      batch[kNumEngines];
  std::vector<Timestamp> cts_of[kNumEngines];
  {
    MutexLock guard(mu_);
    for (int e = 0; e < kNumEngines; ++e) {
      auto& q = ready_[e];
      while (!q.empty() && q.begin()->first <= horizon[e]) {
        cts_of[e].push_back(q.begin()->first);
        batch[e].push_back(std::move(q.begin()->second));
        q.erase(q.begin());
      }
    }
    applying_ = true;
  }
  Status s = Status::OK();
  for (int e = 0; e < kNumEngines && s.ok(); ++e) {
    for (size_t i = 0; i < batch[e].size() && s.ok(); ++i) {
      s = ApplyGroup(e, batch[e][i].first, cts_of[e][i], batch[e][i].second);
    }
  }
  if (s.ok()) {
    // Both engines now cover their horizons; clamp + publish the gate.
    int anchor = db_->anchor_index();
    RecomputeGate(horizon[anchor], horizon[1 - anchor]);
  }
  {
    MutexLock guard(mu_);
    applying_ = false;
    if (s.ok()) {
      for (int e = 0; e < kNumEngines; ++e) {
        applied_horizon_[e] = std::max(applied_horizon_[e], horizon[e]);
        groups_applied_ += batch[e].size();
      }
      ++watermarks_;
    }
  }
  cv_.NotifyAll();
  SKEENA_RETURN_NOT_OK(s);

  server::ReplAck ack;
  {
    MutexLock guard(mu_);
    ack.mem_lsn = recv_lsn_[kMemIndex];
    ack.stor_lsn = recv_lsn_[kStorIndex];
    ack.csr_seq = csr_seq_;
  }
  return ch_.Send(server::EncodeReplAck((*rid)++, ack));
}

void Replica::RecomputeGate(Timestamp anchor_h, Timestamp other_h) {
  Timestamp a = anchor_h;
  Timestamp o = other_h;
  if (!gate_disabled_.load(std::memory_order_acquire)) {
    // Descending scan over replayed mappings (anchor key -> [lo, hi]
    // other-engine values). A mapping above the pair on either side drags
    // both components below it; the first mapping entirely inside stops
    // the scan — CSR values are monotone in key order, so every older
    // mapping is inside too.
    for (auto it = gate_mappings_.rbegin(); it != gate_mappings_.rend();
         ++it) {
      Timestamp key = it->first;
      Timestamp lo = it->second.first;
      Timestamp hi = it->second.second;
      if (key > a) {
        o = std::min(o, lo - 1);
        continue;
      }
      if (hi > o) {
        a = std::min(a, key - 1);
        o = std::min(o, lo - 1);
        continue;
      }
      break;
    }
  }
  MutexLock guard(gate_mu_);
  // Component-wise max keeps the gate monotone. A raw pair older than the
  // published one on one side cannot un-publish data already served.
  gate_anchor_ = std::max(gate_anchor_, a);
  gate_other_ = std::max(gate_other_, o);
}

}  // namespace skeena::repl
