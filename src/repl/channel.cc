#include "repl/channel.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace skeena::repl {

namespace {

void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

ReplChannel::~ReplChannel() { Close(); }

Status ReplChannel::ConnectTo(const std::string& host, uint16_t port) {
  Close();
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::IOError("socket: " + std::string(strerror(errno)));
  }
  SetNoDelay(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s = Status::IOError("connect: " + std::string(strerror(errno)));
    ::close(fd);
    return s;
  }
  fd_.store(fd, std::memory_order_release);
  return Status::OK();
}

void ReplChannel::Adopt(int fd) {
  Close();
  SetNoDelay(fd);
  fd_.store(fd, std::memory_order_release);
}

Status ReplChannel::Send(std::string_view frame) {
  int fd = fd_.load(std::memory_order_acquire);
  if (fd < 0) return Status::IOError("channel not connected");
  size_t off = 0;
  while (off < frame.size()) {
    ssize_t n =
        ::send(fd, frame.data() + off, frame.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Status::IOError("send: " + std::string(strerror(errno)));
  }
  return Status::OK();
}

Status ReplChannel::Recv(server::Frame* frame) {
  for (;;) {
    size_t consumed = 0;
    server::Err err;
    uint64_t hint;
    server::ParseResult r =
        server::ExtractFrame(inbuf_, &consumed, frame, &err, &hint);
    if (r == server::ParseResult::kFrame) {
      inbuf_.erase(0, consumed);
      return Status::OK();
    }
    if (r == server::ParseResult::kError) {
      return Status::Corruption(std::string("repl framing violation: ") +
                                server::ErrName(err));
    }
    int fd = fd_.load(std::memory_order_acquire);
    if (fd < 0) return Status::IOError("channel closed");
    char buf[16384];
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n > 0) {
      inbuf_.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n == 0) return Status::IOError("connection closed by peer");
    return Status::IOError("recv: " + std::string(strerror(errno)));
  }
}

bool ReplChannel::TryRecv(server::Frame* frame, Status* error) {
  *error = Status::OK();
  for (;;) {
    size_t consumed = 0;
    server::Err err;
    uint64_t hint;
    server::ParseResult r =
        server::ExtractFrame(inbuf_, &consumed, frame, &err, &hint);
    if (r == server::ParseResult::kFrame) {
      inbuf_.erase(0, consumed);
      return true;
    }
    if (r == server::ParseResult::kError) {
      *error = Status::Corruption(std::string("repl framing violation: ") +
                                  server::ErrName(err));
      return false;
    }
    int fd = fd_.load(std::memory_order_acquire);
    if (fd < 0) {
      *error = Status::IOError("channel closed");
      return false;
    }
    char buf[16384];
    ssize_t n = ::recv(fd, buf, sizeof(buf), MSG_DONTWAIT);
    if (n > 0) {
      inbuf_.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return false;
    if (n < 0 && errno == EINTR) continue;
    if (n == 0) {
      *error = Status::IOError("connection closed by peer");
    } else {
      *error = Status::IOError("recv: " + std::string(strerror(errno)));
    }
    return false;
  }
}

void ReplChannel::Shutdown() {
  int fd = fd_.load(std::memory_order_acquire);
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

void ReplChannel::Close() {
  int fd = fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) ::close(fd);
  inbuf_.clear();
}

ReplListener::~ReplListener() { Close(); }

Status ReplListener::Listen(uint16_t port) {
  Close();
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::IOError("socket: " + std::string(strerror(errno)));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s = Status::IOError("bind: " + std::string(strerror(errno)));
    ::close(fd);
    return s;
  }
  if (::listen(fd, 16) != 0) {
    Status s = Status::IOError("listen: " + std::string(strerror(errno)));
    ::close(fd);
    return s;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    Status s = Status::IOError("getsockname: " + std::string(strerror(errno)));
    ::close(fd);
    return s;
  }
  port_ = ntohs(addr.sin_port);
  fd_.store(fd, std::memory_order_release);
  return Status::OK();
}

int ReplListener::Accept() {
  int fd = fd_.load(std::memory_order_acquire);
  if (fd < 0) return -1;
  for (;;) {
    int conn = ::accept(fd, nullptr, nullptr);
    if (conn >= 0) {
      SetNoDelay(conn);
      return conn;
    }
    if (errno == EINTR) continue;
    return -1;  // shutdown or hard error; the accept loop exits
  }
}

void ReplListener::Shutdown() {
  int fd = fd_.load(std::memory_order_acquire);
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

void ReplListener::Close() {
  int fd = fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) ::close(fd);
}

}  // namespace skeena::repl
