#ifndef SKEENA_REPL_SHIPPER_H_
#define SKEENA_REPL_SHIPPER_H_

// Primary-side log shipper (docs/REPLICATION.md). One listener thread
// accepts replicas; each connection gets a serve loop that streams both
// engines' WAL frames plus the CSR install journal over a single ordered
// channel, punctuated by REPL_WATERMARK frames that tell the replica how
// far it may apply.
//
// The watermark discipline is the heart of the protocol: the shipper first
// samples both engines' commit horizons (every commit at or below a
// horizon has finished ALL of its log appends — see
// MemEngine::ReplicationHorizon), and only then samples the stream targets
// (each log's CurrentLsn and the journal size). Sampling in that order
// guarantees the targets cover every record of every commit under the
// horizons, and every CSR install those commits made. The watermark is
// emitted only after the connection's cursors reach all three targets, so
// a replica that applies up to the horizons can never see half a commit.
//
// Shipping is additionally bounded by each log's DurableLsn(): a frame
// that is not yet durable on the primary is never put on the wire, so a
// primary crash cannot leave a replica ahead of what the primary itself
// recovers (the torn-tail rule). The shipper never forces a flush — it
// waits for the engines' own group commit to advance durability.

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/types.h"
#include "core/database.h"
#include "repl/channel.h"
#include "server/wire.h"

namespace skeena::repl {

/// Append-only journal of CSR mapping installs, in primary install order
/// (the observer runs under the CSR's writer lock, so journal order IS
/// install order). The shipper streams it by sequence number; a replica's
/// csr_seq resume cursor indexes into it. Construct it before the
/// Database, wire `options.csr.install_observer = journal.Observer()`, and
/// keep it alive for the database's lifetime.
class CsrInstallJournal {
 public:
  std::function<void(Timestamp, Timestamp)> Observer() {
    return [this](Timestamp key, Timestamp value) { Append(key, value); };
  }

  void Append(Timestamp key, Timestamp value) {
    MutexLock guard(mu_);
    entries_.emplace_back(key, value);
    if (observer_) observer_();
  }

  /// Registers a post-append hook, invoked while the journal lock is held
  /// (and, transitively, under the CSR writer lock) — keep it wait-free;
  /// the shipper's implementation bumps an eventcount word and issues at
  /// most one wake. Set during wiring; clearing (nullptr) is race-free at
  /// any time but loses wakes for appends that follow.
  void SetAppendObserver(std::function<void()> observer) {
    MutexLock guard(mu_);
    observer_ = std::move(observer);
  }

  uint64_t size() const {
    MutexLock guard(mu_);
    return entries_.size();
  }

  /// Copies up to `max` entries starting at sequence `from` into *out
  /// (cleared first). Returns the number copied.
  size_t Read(uint64_t from, size_t max,
              std::vector<std::pair<Timestamp, Timestamp>>* out) const {
    out->clear();
    MutexLock guard(mu_);
    for (uint64_t i = from; i < entries_.size() && out->size() < max; ++i) {
      out->push_back(entries_[i]);
    }
    return out->size();
  }

 private:
  mutable Mutex mu_;
  std::vector<std::pair<Timestamp, Timestamp>> entries_ SKEENA_GUARDED_BY(mu_);
  std::function<void()> observer_ SKEENA_GUARDED_BY(mu_);
};

class Shipper {
 public:
  struct Options {
    uint16_t port = 0;  // 0 = kernel-assigned; read back via port()
    /// Soft bound on REPL_LOG payload bytes per frame (one oversized
    /// record still ships alone; the hard bound is kMaxFrameLen).
    size_t max_batch_bytes = 64 * 1024;
    /// Backstop park timeout when no durable-advance / journal-append wake
    /// arrives. The eventcount provides the fast path; this bounds
    /// dead-peer detection latency (the serve loop's TryRecv is the only
    /// thing that notices a closed replica).
    uint32_t idle_backstop_us = 50 * 1000;
  };

  Shipper(Database* db, CsrInstallJournal* journal, Options options);
  Shipper(Database* db, CsrInstallJournal* journal)
      : Shipper(db, journal, Options()) {}
  ~Shipper();

  Shipper(const Shipper&) = delete;
  Shipper& operator=(const Shipper&) = delete;

  /// Binds the listener and starts the accept thread.
  Status Start();
  /// Stops accepting, severs live connections, joins all threads.
  void Stop();
  uint16_t port() const { return listener_.port(); }

  /// Test hook: after roughly `n` more payload bytes, cut the active
  /// connection mid-frame (the tail of the offending frame is dropped).
  /// One-shot; the next connection ships normally.
  void TestOnlyCutAfterBytes(uint64_t n) {
    cut_after_.store(static_cast<int64_t>(n), std::memory_order_release);
  }

  uint64_t connections_served() const {
    // relaxed-ok: monotone diagnostic counter.
    return connections_.load(std::memory_order_relaxed);
  }
  uint64_t watermarks_sent() const {
    // relaxed-ok: monotone diagnostic counter.
    return watermarks_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void Serve(int fd);
  /// Producer side of the progress eventcount: bump, then wake parked
  /// serve loops. Called from the engines' durable-LSN observers, the CSR
  /// journal's append observer, and Stop().
  void BumpProgress();
  /// Sends with the test cut hook applied; IOError when the cut fires.
  Status SendOnChannel(ReplChannel& ch, std::string frame);
  /// Ships one bounded REPL_LOG batch for engine `e` from *cursor toward
  /// min(target, DurableLsn). Sets *progress when bytes went out.
  Status ShipLogs(ReplChannel& ch, int e, uint64_t* rid, Lsn* cursor,
                  Lsn target, bool* progress);
  Status ShipCsr(ReplChannel& ch, uint64_t* rid, uint64_t* cursor,
                 uint64_t target, bool* progress);

  Database* db_;
  CsrInstallJournal* journal_;
  Options options_;

  ReplListener listener_;
  std::thread accept_thread_;
  std::atomic<bool> stop_{false};
  std::atomic<int64_t> cut_after_{-1};
  std::atomic<uint64_t> connections_{0};
  std::atomic<uint64_t> watermarks_{0};

  // Progress eventcount. A serve loop samples the word before reading any
  // stream state, ships a pass, and parks on the sampled value when the
  // pass made no progress; producers bump the word after the state they
  // publish (durable LSN, journal tail) is visible, so a park can never
  // miss an advance (common/parking_lot.h protocol).
  std::atomic<uint32_t> progress_seq_{0};

  // Live connection channels, so Stop() can break their blocked I/O.
  Mutex conns_mu_;
  std::vector<ReplChannel*> live_ SKEENA_GUARDED_BY(conns_mu_);
};

}  // namespace skeena::repl

#endif  // SKEENA_REPL_SHIPPER_H_
