#include "repl/shipper.h"

#include <algorithm>

#include "common/parking_lot.h"
#include "log/log_manager.h"

namespace skeena::repl {

namespace {
constexpr int kMemIndex = static_cast<int>(EngineKind::kMem);
constexpr int kStorIndex = static_cast<int>(EngineKind::kStor);
}  // namespace

Shipper::Shipper(Database* db, CsrInstallJournal* journal, Options options)
    : db_(db), journal_(journal), options_(options) {}

Shipper::~Shipper() { Stop(); }

Status Shipper::Start() {
  SKEENA_RETURN_NOT_OK(listener_.Listen(options_.port));
  stop_.store(false, std::memory_order_release);
  // Wake sources for the serve loop's eventcount: every durable-LSN
  // advance (group commit moved the shippable bound) and every CSR
  // journal append (a new install to stream). Together with the watermark
  // rule — horizons only cover durably committed transactions — these are
  // the only events that can create ship work.
  for (int e = 0; e < kNumEngines; ++e) {
    if (LogManager* lm = db_->engine(e)->Log()) {
      lm->SetDurableObserver([this](Lsn) { BumpProgress(); });
    }
  }
  journal_->SetAppendObserver([this] { BumpProgress(); });
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void Shipper::Stop() {
  stop_.store(true, std::memory_order_release);
  BumpProgress();  // unpark a serve loop idling on the eventcount
  listener_.Shutdown();
  {
    MutexLock guard(conns_mu_);
    for (ReplChannel* ch : live_) ch->Shutdown();
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.Close();
  // Unhook only after the serve loop is joined: the observers are invoked
  // under the producers' own locks, so Set*Observer(nullptr) returning
  // means no call into this (soon-destroyed) shipper is still running.
  for (int e = 0; e < kNumEngines; ++e) {
    if (LogManager* lm = db_->engine(e)->Log()) {
      lm->SetDurableObserver(nullptr);
    }
  }
  journal_->SetAppendObserver(nullptr);
}

void Shipper::BumpProgress() {
  progress_seq_.fetch_add(1, std::memory_order_release);
  ParkingLot::WakeAll(progress_seq_);
}

void Shipper::AcceptLoop() {
  // Connections are served sequentially: one replica per shipper is the
  // deployment shape, and a killed connection's serve loop exits (its
  // sends fail) before the replacement is accepted from the backlog.
  while (!stop_.load(std::memory_order_acquire)) {
    int fd = listener_.Accept();
    if (fd < 0) return;  // listener shut down
    Serve(fd);
  }
}

Status Shipper::SendOnChannel(ReplChannel& ch, std::string frame) {
  int64_t cut = cut_after_.load(std::memory_order_acquire);
  if (cut >= 0) {
    if (static_cast<int64_t>(frame.size()) >= cut) {
      // Put exactly `cut` bytes on the wire — a torn frame — then sever.
      ch.Send(std::string_view(frame).substr(0, static_cast<size_t>(cut)));
      cut_after_.store(-1, std::memory_order_release);
      ch.Shutdown();
      return Status::IOError("test cut");
    }
    cut_after_.store(cut - static_cast<int64_t>(frame.size()),
                     std::memory_order_release);
  }
  return ch.Send(frame);
}

Status Shipper::ShipLogs(ReplChannel& ch, int e, uint64_t* rid, Lsn* cursor,
                         Lsn target, bool* progress) {
  if (*cursor >= target) return Status::OK();
  EngineIface* eng = db_->engine(e);
  const StorageDevice* dev = eng->LogDevice();
  if (dev == nullptr) return Status::OK();
  // Torn-tail rule: never put a frame on the wire before the primary has
  // it durable. No forced flush — the engine's group commit advances this.
  Lsn limit = std::min(target, eng->DurableLsn());
  if (*cursor >= limit) return Status::OK();
  LogReader reader(dev, *cursor);
  server::ReplLogBatch batch;
  batch.engine = static_cast<uint8_t>(e);
  batch.start_lsn = *cursor;
  Lsn end = *cursor;
  size_t bytes = 0;
  std::string rec;
  while (end < limit && bytes < options_.max_batch_bytes) {
    if (!reader.Next(&rec)) break;
    if (reader.offset() > limit) break;  // frame crosses the bound
    end = reader.offset();
    bytes += rec.size() + 4;
    batch.records.push_back(std::move(rec));
  }
  if (batch.records.empty()) return Status::OK();
  batch.end_lsn = end;
  SKEENA_RETURN_NOT_OK(SendOnChannel(ch, EncodeReplLog((*rid)++, batch)));
  *cursor = end;
  *progress = true;
  return Status::OK();
}

Status Shipper::ShipCsr(ReplChannel& ch, uint64_t* rid, uint64_t* cursor,
                        uint64_t target, bool* progress) {
  if (*cursor >= target) return Status::OK();
  server::ReplCsrBatch batch;
  batch.first_seq = *cursor;
  uint64_t want = std::min<uint64_t>(target - *cursor,
                                     options_.max_batch_bytes / 16);
  journal_->Read(*cursor, std::max<uint64_t>(want, 1), &batch.entries);
  if (batch.entries.empty()) return Status::OK();
  SKEENA_RETURN_NOT_OK(SendOnChannel(ch, EncodeReplCsr((*rid)++, batch)));
  *cursor += batch.entries.size();
  *progress = true;
  return Status::OK();
}

void Shipper::Serve(int fd) {
  ReplChannel ch;
  ch.Adopt(fd);
  {
    MutexLock guard(conns_mu_);
    live_.push_back(&ch);
  }
  // relaxed-ok: monotone diagnostic counter.
  connections_.fetch_add(1, std::memory_order_relaxed);

  // Handshake: the replica leads with its resume cursors.
  server::Frame hello_frame;
  server::ReplHello hello;
  bool ok = ch.Recv(&hello_frame).ok() &&
            hello_frame.opcode == static_cast<uint8_t>(server::Op::kReplHello) &&
            server::DecodeReplHelloBody(hello_frame.body, &hello) &&
            hello.version == server::kProtocolVersion;
  if (ok) {
    ok = SendOnChannel(ch, server::EncodeReplHelloOk(hello_frame.request_id,
                                                     server::kProtocolVersion))
             .ok();
  }

  uint64_t rid = 1;
  Lsn cursor[kNumEngines] = {};
  cursor[kMemIndex] = hello.mem_lsn;
  cursor[kStorIndex] = hello.stor_lsn;
  uint64_t csr_cursor = hello.csr_seq;

  // One watermark in flight at a time. Horizons are sampled FIRST, stream
  // targets AFTER: every commit at or below a horizon finished its appends
  // before the horizon was computed, so its bytes sit below the targets
  // sampled later — when the cursors reach all three targets, the
  // watermark's coverage claim holds.
  bool have_wm = false;
  server::ReplWatermark wm{};
  server::ReplWatermark last_sent{};
  bool sent_any = false;
  Lsn target[kNumEngines] = {};
  uint64_t csr_target = 0;

  while (ok && !stop_.load(std::memory_order_acquire)) {
    // Eventcount sample point. Every piece of stream state the pass reads
    // (horizons, log targets, durable LSNs, journal size) is read after
    // this load, so a producer bump racing the pass makes the ParkFor
    // below return immediately instead of sleeping on a stale sample.
    uint32_t seen = progress_seq_.load(std::memory_order_acquire);
    if (!have_wm) {
      Timestamp mem_h = db_->mem()->engine()->ReplicationHorizon();
      Timestamp stor_h = db_->stor()->engine()->ReplicationHorizon();
      target[kMemIndex] = db_->engine(kMemIndex)->CurrentLsn();
      target[kStorIndex] = db_->engine(kStorIndex)->CurrentLsn();
      csr_target = journal_->size();
      wm.mem_horizon = mem_h;
      wm.stor_horizon = stor_h;
      wm.csr_seq = csr_target;
      have_wm = true;
    }
    bool progress = false;
    Status s = ShipLogs(ch, kMemIndex, &rid, &cursor[kMemIndex],
                        target[kMemIndex], &progress);
    if (s.ok()) {
      s = ShipLogs(ch, kStorIndex, &rid, &cursor[kStorIndex],
                   target[kStorIndex], &progress);
    }
    if (s.ok()) s = ShipCsr(ch, &rid, &csr_cursor, csr_target, &progress);
    if (s.ok() && cursor[kMemIndex] >= target[kMemIndex] &&
        cursor[kStorIndex] >= target[kStorIndex] && csr_cursor >= csr_target) {
      bool advanced = !sent_any || wm.mem_horizon != last_sent.mem_horizon ||
                      wm.stor_horizon != last_sent.stor_horizon ||
                      wm.csr_seq != last_sent.csr_seq;
      if (advanced) {
        s = SendOnChannel(ch, server::EncodeReplWatermark(rid++, wm));
        if (s.ok()) {
          last_sent = wm;
          sent_any = true;
          // relaxed-ok: monotone diagnostic counter.
          watermarks_.fetch_add(1, std::memory_order_relaxed);
          progress = true;
        }
      }
      have_wm = false;  // recompute next pass
    }
    if (s.ok()) {
      // Drain ACKs (informational; resume is replica-driven) and detect a
      // closed peer without blocking.
      server::Frame ack;
      Status rerr;
      while (ch.TryRecv(&ack, &rerr)) {
      }
      if (!rerr.ok()) s = rerr;
    }
    if (!s.ok()) break;
    if (!progress) {
      // Nothing shipped: park until a durable advance / journal append
      // bumps the eventcount. The backstop bounds how long a dead peer
      // can go unnoticed (TryRecv above is the only close detector).
      ParkingLot::ParkFor(progress_seq_, seen,
                          uint64_t{options_.idle_backstop_us} * 1000);
    }
  }

  {
    MutexLock guard(conns_mu_);
    live_.erase(std::find(live_.begin(), live_.end(), &ch));
  }
  ch.Close();
}

}  // namespace skeena::repl
