#ifndef SKEENA_REPL_APPLIER_H_
#define SKEENA_REPL_APPLIER_H_

// Replica-side replication applier (docs/REPLICATION.md). Connects to a
// Shipper, replays both engines' log streams and the CSR install journal
// into a replica-mode Database, and publishes the visibility gate that
// replica read transactions take their snapshot pair from.
//
// Visibility gating: the shipper's watermark proves both engines are
// individually complete up to (mem_horizon, stor_horizon), but the two
// horizons were sampled at different instants, so a cross-engine commit
// can straddle them — visible in one engine, missing in the other. The
// gate clamps the raw pair against the replayed CSR mappings: scanning
// mappings by anchor key descending, any mapping whose key or value pokes
// above the current pair drags both components below it, until a mapping
// falls entirely inside (CSR values are monotone in key order, so
// everything older is inside too). The published gate is the
// component-wise max with the previous gate — monotone per session, and
// every (anchor, other) pair it ever exposes is cross-engine consistent
// against the replayed CSR prefix.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/types.h"
#include "core/database.h"
#include "log/log_records.h"
#include "repl/channel.h"
#include "server/wire.h"

namespace skeena::repl {

class Replica {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    uint16_t port = 0;  // the shipper's port
    /// Backoff between reconnect attempts after a severed channel.
    uint32_t reconnect_interval_us = 2000;
  };

  /// `db` must be constructed with DatabaseOptions::replica = true. The
  /// constructor installs this applier as the db's snapshot provider.
  Replica(Database* db, Options options);
  ~Replica();

  Replica(const Replica&) = delete;
  Replica& operator=(const Replica&) = delete;

  Status Start();
  void Stop();

  /// Test hook: severs the channel mid-stream. The run loop reconnects
  /// and resumes from the received (frame-aligned) cursors; buffered
  /// pending/ready groups survive the kill.
  void KillChannel();

  /// Test hook: publish the raw watermark horizons as the gate, skipping
  /// the CSR clamp. UNSOUND — exists so the SI checker can demonstrate
  /// the torn cross-engine reads the gate prevents (non-vacuity).
  void TestOnlyDisableGate() {
    gate_disabled_.store(true, std::memory_order_release);
  }

  /// Current gate pair (anchor snapshot, other-engine snapshot).
  /// Component-wise monotone; (1, 1) until the first watermark.
  std::pair<Timestamp, Timestamp> GatePair() const;

  /// Blocks until the received stream positions reach the given targets
  /// AND every buffered group has been applied (the caller samples the
  /// targets on the primary after quiescing writers). False on timeout.
  bool WaitCaughtUp(Lsn mem_lsn, Lsn stor_lsn, uint64_t csr_seq,
                    std::chrono::milliseconds timeout);

  struct Progress {
    Lsn recv_lsn[kNumEngines] = {};
    uint64_t csr_seq = 0;
    Timestamp applied_horizon[kNumEngines] = {};
    uint64_t watermarks = 0;
    uint64_t reconnects = 0;
    uint64_t groups_applied = 0;
  };
  Progress progress() const;

 private:
  void RunLoop();
  /// One connected session: handshake + frame pump. Returns when the
  /// channel dies or Stop() is called.
  void RunSession();
  Status HandleLog(const server::ReplLogBatch& batch);
  Status HandleCsr(const server::ReplCsrBatch& batch);
  Status HandleWatermark(const server::ReplWatermark& wm, uint64_t* rid);
  Status ApplyGroup(int e, GlobalTxnId gtid, Timestamp cts,
                    const std::vector<LogRecord>& records);
  /// Clamp (anchor_h, other_h) against gate_mappings_ and publish.
  void RecomputeGate(Timestamp anchor_h, Timestamp other_h);
  /// WaitCaughtUp's predicate (out-of-line so TSA sees the lock).
  bool CaughtUpLocked(Lsn mem_lsn, Lsn stor_lsn, uint64_t csr_seq) const
      SKEENA_REQUIRES(mu_);

  Database* db_;
  Options options_;

  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> gate_disabled_{false};
  ReplChannel ch_;

  // --- staging state owned by the run thread (no lock).
  // Data records grouped per gtid until the commit marker lands.
  std::unordered_map<GlobalTxnId, std::vector<LogRecord>> pending_[kNumEngines];
  // Replayed CSR mappings: anchor key -> installed [lo, hi] value range.
  // Run-thread only; the gate scan walks it descending.
  std::map<Timestamp, std::pair<Timestamp, Timestamp>> gate_mappings_;

  // --- stream progress, shared with WaitCaughtUp/progress. Written only
  // by the run thread; mu_ is held only around touches, never across
  // engine calls — the engines' GC providers call back into GatePair.
  mutable Mutex mu_;
  CondVar cv_;
  Lsn recv_lsn_[kNumEngines] SKEENA_GUARDED_BY(mu_) = {};
  uint64_t csr_seq_ SKEENA_GUARDED_BY(mu_) = 0;
  // Committed groups keyed by commit timestamp (mem cts / stor ser),
  // applied in ascending order once a watermark covers them.
  std::map<Timestamp, std::pair<GlobalTxnId, std::vector<LogRecord>>>
      ready_[kNumEngines] SKEENA_GUARDED_BY(mu_);
  // Groups extracted from ready_, not yet applied.
  bool applying_ SKEENA_GUARDED_BY(mu_) = false;
  Timestamp applied_horizon_[kNumEngines] SKEENA_GUARDED_BY(mu_) = {};
  uint64_t watermarks_ SKEENA_GUARDED_BY(mu_) = 0;
  uint64_t reconnects_ SKEENA_GUARDED_BY(mu_) = 0;
  uint64_t groups_applied_ SKEENA_GUARDED_BY(mu_) = 0;

  // Published gate. Separate lock: GatePair() is called from reader
  // threads and from engine GC floors re-entered under mu_.
  mutable Mutex gate_mu_ SKEENA_ACQUIRED_AFTER(mu_);
  Timestamp gate_anchor_ SKEENA_GUARDED_BY(gate_mu_) = 1;
  Timestamp gate_other_ SKEENA_GUARDED_BY(gate_mu_) = 1;
};

}  // namespace skeena::repl

#endif  // SKEENA_REPL_APPLIER_H_
