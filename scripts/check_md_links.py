#!/usr/bin/env python3
"""Markdown link + anchor checker for the repo's documentation.

Walks every tracked-directory ``*.md`` file (repo root, ``docs/``,
``bench/``, ``scripts/``, ``tests/``, ``src/``, ``examples/``) and fails if

* a relative link target does not exist on disk,
* a ``file.md#anchor`` (or intra-file ``#anchor``) link names a heading
  that file does not define (GitHub anchor-ification: lowercase, strip
  punctuation, spaces to dashes), or
* a reference-style link ``[x][ref]`` has no matching ``[ref]:`` definition.

External links (``http://``, ``https://``, ``mailto:``) are *not* fetched —
CI must not depend on the network — only checked for empty targets.

Usage: scripts/check_md_links.py [repo_root]
Exit status: 0 clean, 1 broken links (each printed as file:line: message).
"""

import os
import re
import sys

SCAN_DIRS = ["", "docs", "bench", "scripts", "tests", "src", "examples",
             ".github"]
INLINE_LINK = re.compile(r"(?<!\!)\[([^\]]*)\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
IMAGE_LINK = re.compile(r"\!\[([^\]]*)\]\(([^)\s]+)\)")
REF_USE = re.compile(r"\[([^\]]+)\]\[([^\]]*)\]")
REF_DEF = re.compile(r"^\s*\[([^\]]+)\]:\s*(\S+)")
HEADING = re.compile(r"^(#{1,6})\s+(.*)$")
CODE_FENCE = re.compile(r"^\s*(```|~~~)")


def github_anchor(heading: str) -> str:
    """GitHub's heading -> anchor id transformation (close enough)."""
    text = re.sub(r"[`*_~]", "", heading.strip())
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links keep text
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def md_files(root: str):
    for d in SCAN_DIRS:
        base = os.path.join(root, d) if d else root
        if not os.path.isdir(base):
            continue
        if d:
            for dirpath, dirnames, filenames in os.walk(base):
                dirnames[:] = [x for x in dirnames
                               if x not in ("build", ".git", "CMakeFiles")]
                for f in filenames:
                    if f.endswith(".md"):
                        yield os.path.join(dirpath, f)
        else:
            for f in os.listdir(base):
                if f.endswith(".md"):
                    yield os.path.join(base, f)


def collect_anchors(path: str):
    anchors, counts = set(), {}
    in_fence = False
    try:
        lines = open(path, encoding="utf-8").read().splitlines()
    except OSError:
        return anchors
    for line in lines:
        if CODE_FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = HEADING.match(line)
        if m:
            a = github_anchor(m.group(2))
            n = counts.get(a, 0)
            counts[a] = n + 1
            anchors.add(a if n == 0 else f"{a}-{n}")
    return anchors


def main() -> int:
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else ".")
    files = sorted(set(md_files(root)))
    anchor_cache = {}
    errors = []

    def anchors_of(path):
        if path not in anchor_cache:
            anchor_cache[path] = collect_anchors(path)
        return anchor_cache[path]

    for path in files:
        rel = os.path.relpath(path, root)
        try:
            lines = open(path, encoding="utf-8").read().splitlines()
        except OSError as e:
            errors.append(f"{rel}:0: unreadable: {e}")
            continue
        ref_defs = {m.group(1).lower()
                    for line in lines if (m := REF_DEF.match(line))}
        in_fence = False
        for ln, line in enumerate(lines, 1):
            if CODE_FENCE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            targets = [m.group(2) for m in INLINE_LINK.finditer(line)]
            targets += [m.group(2) for m in IMAGE_LINK.finditer(line)]
            for target in targets:
                if not target:
                    errors.append(f"{rel}:{ln}: empty link target")
                    continue
                if target.startswith(("http://", "https://", "mailto:")):
                    continue
                if target.startswith("#"):
                    if github_anchor(target[1:]) not in anchors_of(path) \
                            and target[1:] not in anchors_of(path):
                        errors.append(
                            f"{rel}:{ln}: no heading for anchor '{target}'")
                    continue
                frag = None
                if "#" in target:
                    target, frag = target.split("#", 1)
                dest = os.path.normpath(
                    os.path.join(os.path.dirname(path), target))
                if not os.path.exists(dest):
                    errors.append(f"{rel}:{ln}: missing file '{target}'")
                    continue
                if frag is not None and dest.endswith(".md"):
                    if github_anchor(frag) not in anchors_of(dest) \
                            and frag not in anchors_of(dest):
                        errors.append(
                            f"{rel}:{ln}: no heading for anchor "
                            f"'{target}#{frag}'")
            for m in REF_USE.finditer(line):
                ref = (m.group(2) or m.group(1)).lower()
                if ref and ref not in ref_defs:
                    # Tolerate literal bracket text like [vmin, vmax][...]
                    if re.fullmatch(r"[\w\- ]+", ref):
                        errors.append(
                            f"{rel}:{ln}: undefined link reference "
                            f"'[{ref}]'")

    for e in errors:
        print(e)
    print(f"check_md_links: {len(files)} files, {len(errors)} broken links")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
