#!/usr/bin/env python3
"""Project-invariant linter for concurrency rules the compiler can't see.

Rules
-----
epoch-guard-blocking
    An EpochGuard (common/epoch.h) pins reclamation for the whole domain,
    so its scope must never span a blocking wait: ParkingLot parks,
    WaitDurable, condvar waits, or socket I/O (the PR-2 review bug class).
    Flags any blocking call lexically inside a live EpochGuard scope.

raw-std-sync
    Raw std::mutex / std::shared_mutex / std::condition_variable (and
    their lock holders) are banned outside common/thread_annotations.h:
    they are invisible to Clang's thread-safety analysis, so a field they
    guard silently loses its GUARDED_BY checking. Use the annotated
    Mutex/SharedMutex/CondVar/MutexLock wrappers.

unjustified-relaxed
    std::memory_order_relaxed needs either a `// relaxed-ok: <reason>`
    comment on the same or one of the three preceding lines, or a
    per-file allowlist entry below (for protocol files where the ordering
    argument lives in a design doc and per-site comments would be noise).

tsan-suppression
    Every entry in .tsan-suppressions must (a) carry its own justification
    comment directly above it and (b) name a symbol that still exists in
    src/ — dead suppressions outlive the code they excused and mask
    genuine races in later rewrites.

Engines
-------
Prefers libclang (python clang bindings) for comment/scope-exact analysis
of epoch-guard-blocking; transparently falls back to a conservative lexer
when clang.cindex is unavailable or fails to parse (the usual case in the
build container, which ships GCC only). Both engines emit identical
finding fingerprints, so the baseline is engine-independent.

Baseline
--------
Findings are compared against scripts/check_invariants_baseline.txt.
New findings fail (exit 1); findings in the baseline pass; baseline
entries that no longer fire are reported so the baseline can be shrunk.
Run with --update-baseline to rewrite the baseline from the current tree.
"""

import argparse
import os
import re
import sys

# --------------------------------------------------------------------------
# Configuration
# --------------------------------------------------------------------------

# Files whose memory_order_relaxed sites are justified wholesale. Keep the
# reason honest: the entry must point at where the ordering argument lives.
RELAXED_ALLOWLIST = {
    "src/core/csr.cc":
        "CSR commit/install protocol: orderings are proven as a unit in the "
        "file-top protocol comment and DESIGN.md (Timestamps & the CSR); "
        "40+ sites, per-site comments would drown the protocol",
    "src/core/commit_pipeline.cc":
        "pipelined-commit stage counters and seqlock protocol; ordering "
        "argument in the file-top comment",
    "src/core/commit_pipeline.h":
        "stage-counter reads paired with commit_pipeline.cc's protocol",
    "src/log/log_manager.cc":
        "lock-free append ring: reserve/fill/flush ordering proven in the "
        "ring protocol comment; relaxed sites are stats and ring cursors "
        "whose edges are the documented acquire/release pairs",
    "src/server/server.cc":
        "monotone server stats counters (accepted/closed/frames/...); "
        "read-only diagnostics, no ordering consumers",
    "src/stordb/buffer_pool.cc":
        "clock-sweep hints and hit/miss/eviction stats; the frame state "
        "machine's edges are the documented acquire/release pairs",
    "src/stordb/buffer_pool.h":
        "same counters' inline accessors (see buffer_pool.cc entry)",
    "src/common/sharded_counter.h":
        "sharded statistic counters: per-shard relaxed increments folded "
        "on read, documented at the class comment",
}

# What counts as "blocking" inside an EpochGuard scope. Deliberately
# syntactic: the point is to force the guard to be dropped (copy values
# out) before any of these, however indirect the call.
BLOCKING_PATTERNS = [
    (re.compile(r"\bParkingLot::Park(For)?\b"), "ParkingLot park"),
    (re.compile(r"\bWaitDurable\s*\("), "durable-LSN wait"),
    (re.compile(r"\.Wait(For|Until)?\s*\("), "condvar wait"),
    (re.compile(r"\b(sleep_for|sleep_until)\s*\("), "thread sleep"),
    (re.compile(r"\.(Recv|Send|TryRecv)\s*\("), "replication socket I/O"),
    (re.compile(r"::(recv|send|read|write|accept4?|connect)\s*\("),
     "raw socket/file I/O"),
]

RAW_SYNC_RE = re.compile(
    r"\bstd::(mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"condition_variable(_any)?|lock_guard|unique_lock|shared_lock|"
    r"scoped_lock)\b")

# Files allowed to touch raw std primitives: the wrapper itself.
RAW_SYNC_EXEMPT = {"src/common/thread_annotations.h"}

EPOCH_GUARD_RE = re.compile(r"\bEpochGuard\s+(\w+)\s*[({]")
RELAXED_RE = re.compile(r"\bmemory_order_relaxed\b")
RELAXED_OK_RE = re.compile(r"relaxed-ok:")


class Finding:
    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def fingerprint(self):
        # Stable across line drift: rule + file + normalized message.
        return f"{self.rule}|{self.path}|{self.message}"

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


# --------------------------------------------------------------------------
# Comment-aware line splitting (shared lexer machinery)
# --------------------------------------------------------------------------

def split_lines(text):
    """Yields (code, comment) per line with block comments and string
    literals stripped from the code part."""
    out = []
    in_block = False
    for raw in text.splitlines():
        code, comment = [], []
        i, n = 0, len(raw)
        while i < n:
            if in_block:
                end = raw.find("*/", i)
                if end < 0:
                    comment.append(raw[i:])
                    i = n
                else:
                    comment.append(raw[i:end])
                    in_block = False
                    i = end + 2
                continue
            ch = raw[i]
            if ch == "/" and i + 1 < n and raw[i + 1] == "/":
                comment.append(raw[i + 2:])
                i = n
            elif ch == "/" and i + 1 < n and raw[i + 1] == "*":
                in_block = True
                i += 2
            elif ch == '"' or ch == "'":
                quote = ch
                i += 1
                while i < n:
                    if raw[i] == "\\":
                        i += 2
                        continue
                    if raw[i] == quote:
                        i += 1
                        break
                    i += 1
                code.append(quote + quote)  # keep token boundaries
            else:
                code.append(ch)
                i += 1
        out.append(("".join(code), "".join(comment)))
    return out


# --------------------------------------------------------------------------
# Lexer engine
# --------------------------------------------------------------------------

def lex_epoch_guard_blocking(path, lines):
    """Tracks EpochGuard declarations by brace depth; any blocking pattern
    while a guard scope is live is a finding."""
    findings = []
    depth = 0
    guards = []  # (declared_depth, guard_name, line_no)
    for idx, (code, _comment) in enumerate(lines, start=1):
        m = EPOCH_GUARD_RE.search(code)
        for pat, what in BLOCKING_PATTERNS:
            # A guard declared on this very line guards only later lines.
            if guards and pat.search(code):
                g_depth, g_name, g_line = guards[-1]
                findings.append(Finding(
                    "epoch-guard-blocking", path, idx,
                    f"{what} inside EpochGuard '{g_name}' "
                    f"(declared line {g_line}); drop the guard first"))
        depth += code.count("{") - code.count("}")
        while guards and depth < guards[-1][0]:
            guards.pop()
        if m:
            # Scope of a local object: the enclosing block (current depth).
            guards.append((depth, m.group(1), idx))
    return findings


def lex_raw_std_sync(path, lines):
    if path in RAW_SYNC_EXEMPT:
        return []
    findings = []
    for idx, (code, _comment) in enumerate(lines, start=1):
        m = RAW_SYNC_RE.search(code)
        if m:
            findings.append(Finding(
                "raw-std-sync", path, idx,
                f"raw {m.group(0)} (invisible to thread-safety analysis); "
                f"use the annotated wrappers in common/thread_annotations.h"))
    return findings


def lex_unjustified_relaxed(path, lines):
    if path in RELAXED_ALLOWLIST:
        return []
    findings = []
    for idx, (code, comment) in enumerate(lines, start=1):
        if not RELAXED_RE.search(code):
            continue
        window = [comment] + [
            lines[j][1] for j in range(max(0, idx - 4), idx - 1)]
        if any(RELAXED_OK_RE.search(c) for c in window):
            continue
        findings.append(Finding(
            "unjustified-relaxed", path, idx,
            "memory_order_relaxed without a '// relaxed-ok: <reason>' "
            "comment (same line or up to 3 lines above) and not in the "
            "per-file allowlist"))
    return findings


# --------------------------------------------------------------------------
# libclang engine (preferred when the bindings exist)
# --------------------------------------------------------------------------

def clang_epoch_guard_blocking(repo_root, rel_paths):
    """AST-exact version of the EpochGuard rule. Returns None when the
    clang python bindings are unusable, signalling the lexer fallback."""
    try:
        from clang import cindex  # noqa: F401
        index = cindex.Index.create()
    except Exception:
        return None

    from clang import cindex
    findings = []
    blocking_names = {"Park", "ParkFor", "WaitDurable", "Wait", "WaitFor",
                      "WaitUntil", "Recv", "Send", "TryRecv", "sleep_for",
                      "sleep_until", "recv", "send", "read", "write",
                      "accept", "accept4", "connect"}
    args = ["-std=c++20", "-I", os.path.join(repo_root, "src")]
    for rel in rel_paths:
        if not rel.endswith(".cc"):
            continue
        try:
            tu = index.parse(os.path.join(repo_root, rel), args=args)
        except Exception:
            return None  # toolchain mismatch: fall back wholesale

        def walk(node, live_guards):
            for child in node.get_children():
                if (child.kind == cindex.CursorKind.VAR_DECL
                        and "EpochGuard" in child.type.spelling):
                    live_guards = live_guards + [(child.spelling,
                                                  child.location.line)]
                elif (child.kind == cindex.CursorKind.CALL_EXPR
                      and child.spelling in blocking_names and live_guards):
                    g_name, g_line = live_guards[-1]
                    findings.append(Finding(
                        "epoch-guard-blocking", rel, child.location.line,
                        f"{child.spelling} call inside EpochGuard "
                        f"'{g_name}' (declared line {g_line}); drop the "
                        f"guard first"))
                walk(child, live_guards
                     if child.kind != cindex.CursorKind.COMPOUND_STMT
                     else list(live_guards))
        try:
            walk(tu.cursor, [])
        except Exception:
            return None
    return findings


# --------------------------------------------------------------------------
# .tsan-suppressions rule
# --------------------------------------------------------------------------

def check_tsan_suppressions(repo_root, src_texts):
    path = os.path.join(repo_root, ".tsan-suppressions")
    if not os.path.exists(path):
        return []
    findings = []
    prev_was_comment = False
    with open(path, encoding="utf-8") as f:
        for idx, raw in enumerate(f, start=1):
            line = raw.strip()
            if not line:
                prev_was_comment = False
                continue
            if line.startswith("#"):
                prev_was_comment = True
                continue
            m = re.match(r"^(\w+):(.+)$", line)
            if not m:
                findings.append(Finding(
                    "tsan-suppression", ".tsan-suppressions", idx,
                    f"unparseable suppression '{line}'"))
                prev_was_comment = False
                continue
            symbol = m.group(2)
            if not prev_was_comment:
                findings.append(Finding(
                    "tsan-suppression", ".tsan-suppressions", idx,
                    f"suppression '{line}' has no justification comment "
                    f"directly above it"))
            # The last :: component must exist as an identifier in src/.
            leaf = symbol.split("::")[-1].strip("*")
            leaf_re = re.compile(rf"\b{re.escape(leaf)}\b")
            if leaf and not any(leaf_re.search(t) for t in src_texts.values()):
                findings.append(Finding(
                    "tsan-suppression", ".tsan-suppressions", idx,
                    f"suppression '{line}' names symbol '{leaf}' which no "
                    f"longer exists in src/ — delete the dead suppression"))
            prev_was_comment = False
    return findings


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------

def collect_sources(repo_root):
    rels = []
    src_dir = os.path.join(repo_root, "src")
    scan_root = src_dir if os.path.isdir(src_dir) else repo_root
    for dirpath, _dirs, files in os.walk(scan_root):
        for name in sorted(files):
            if name.endswith((".h", ".cc")):
                full = os.path.join(dirpath, name)
                rels.append(os.path.relpath(full, repo_root))
    return sorted(rels)


def run(repo_root, baseline_path, update_baseline, no_libclang):
    rel_paths = collect_sources(repo_root)
    texts = {}
    for rel in rel_paths:
        with open(os.path.join(repo_root, rel), encoding="utf-8",
                  errors="replace") as f:
            texts[rel] = f.read()

    findings = []
    clang_findings = None
    if not no_libclang:
        clang_findings = clang_epoch_guard_blocking(repo_root, rel_paths)
    engine = "libclang" if clang_findings is not None else "lexer"

    for rel in rel_paths:
        lines = split_lines(texts[rel])
        if clang_findings is None:
            findings.extend(lex_epoch_guard_blocking(rel, lines))
        findings.extend(lex_raw_std_sync(rel, lines))
        findings.extend(lex_unjustified_relaxed(rel, lines))
    if clang_findings is not None:
        findings.extend(clang_findings)
    findings.extend(check_tsan_suppressions(repo_root, texts))

    if update_baseline:
        with open(baseline_path, "w", encoding="utf-8") as f:
            f.write("# Expected findings for scripts/check_invariants.py.\n")
            f.write("# One fingerprint per line; regenerate with "
                    "--update-baseline.\n")
            for fd in sorted(set(fp.fingerprint() for fp in findings)):
                f.write(fd + "\n")
        print(f"check_invariants: wrote {len(set(f.fingerprint() for f in findings))} "
              f"baseline entries to {baseline_path} (engine: {engine})")
        return 0

    baseline = set()
    if os.path.exists(baseline_path):
        with open(baseline_path, encoding="utf-8") as f:
            for line in f:
                line = line.strip()
                if line and not line.startswith("#"):
                    baseline.add(line)

    new = [f for f in findings if f.fingerprint() not in baseline]
    fired = set(f.fingerprint() for f in findings)
    stale = sorted(baseline - fired)

    print(f"check_invariants: engine={engine} files={len(rel_paths)} "
          f"findings={len(findings)} (baseline={len(baseline)}, "
          f"new={len(new)}, stale-baseline={len(stale)})")
    for f in new:
        print(f"NEW: {f}")
    for fp in stale:
        print(f"STALE BASELINE (fix landed? shrink the baseline): {fp}")
    if new:
        print("check_invariants: FAIL — new invariant violations above")
        return 1
    print("check_invariants: OK")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=None,
                    help="repo root (default: parent of this script)")
    ap.add_argument("--baseline", default=None,
                    help="baseline file (default: "
                         "scripts/check_invariants_baseline.txt under root)")
    ap.add_argument("--update-baseline", action="store_true",
                    help="rewrite the baseline from current findings")
    ap.add_argument("--no-libclang", action="store_true",
                    help="force the lexer engine (reproduces the container)")
    args = ap.parse_args()
    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    baseline = args.baseline or os.path.join(
        root, "scripts", "check_invariants_baseline.txt")
    sys.exit(run(root, baseline, args.update_baseline, args.no_libclang))


if __name__ == "__main__":
    main()
