#!/usr/bin/env bash
# Smoke-runs one (or more) bench binaries at tiny scale and checks that each
# produced a valid BENCH_<name>.json trajectory point file.
#
# Usage: scripts/run_bench_smoke.sh [build_dir] [bench ...]
#   build_dir  CMake build tree (default: build)
#   bench      bench target names (default: abort_rate)
#
# Scale knobs are env-driven (see bench/common/workload.h); this script
# pins them down to smoke size unless the caller overrides.
set -euo pipefail

BUILD_DIR="${1:-build}"
shift || true
BENCHES=("${@:-abort_rate}")

export SKEENA_BENCH_MS="${SKEENA_BENCH_MS:-50}"
export SKEENA_BENCH_CONNS="${SKEENA_BENCH_CONNS:-1,2}"

OUT_DIR="${SKEENA_BENCH_JSON_DIR:-$BUILD_DIR/bench_json}"
mkdir -p "$OUT_DIR"
export SKEENA_BENCH_JSON_DIR="$OUT_DIR"

fail=0
for bench in "${BENCHES[@]}"; do
  bin="$BUILD_DIR/bench/$bench"
  if [[ ! -x "$bin" ]]; then
    echo "run_bench_smoke: missing binary $bin (build with -DSKEENA_BUILD_BENCH=ON)" >&2
    exit 2
  fi
  json="$OUT_DIR/BENCH_$bench.json"
  rm -f "$json"
  echo "=== smoke: $bench (${SKEENA_BENCH_MS} ms/cell, conns ${SKEENA_BENCH_CONNS}) ==="
  "$bin"
  if [[ ! -s "$json" ]]; then
    echo "run_bench_smoke: $bench did not write $json" >&2
    fail=1
    continue
  fi
  if command -v python3 >/dev/null 2>&1; then
    python3 - "$json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["bench"], "empty bench name"
assert doc["points"], "no points recorded"
for p in doc["points"]:
    assert set(p) == {"matrix", "row", "col", "value"}, f"bad point {p}"
    assert isinstance(p["value"], (int, float)), f"bad value {p}"
if doc["bench"] == "ablation_commit":
    # The parking-lot wakeup accounting must be present for every protocol
    # variant: syscall-wakeups-per-commit and waiter-parks-per-commit
    # matrices, with sane (non-negative, finite) values.
    wake = [p for p in doc["points"] if "commit wakeups" in p["matrix"]]
    parks = [p for p in doc["points"] if "commit waits" in p["matrix"]]
    assert wake, "no wakeup-count points in BENCH_ablation_commit.json"
    assert parks, "no park-count points in BENCH_ablation_commit.json"
    expected_rows = {"pipelined, 1 queue", "pipelined, 4 queues",
                     "synchronous flush"}
    for name, pts in (("wakeups", wake), ("parks", parks)):
        rows = {p["row"] for p in pts}
        assert rows == expected_rows, f"{name} rows {rows} != {expected_rows}"
        for p in pts:
            assert 0 <= p["value"] < 1e6, f"absurd {name} value {p}"
    sync_wakes = [p["value"] for p in wake if p["row"] == "synchronous flush"]
    assert all(v == 0 for v in sync_wakes), \
        f"sync mode issued completion wakeups: {sync_wakes}"
    print(f"  OK wakeup fields: {len(wake)} wakeup + {len(parks)} park points")
    # Raw-speed log path: the flush-backend x commit-window matrices must
    # cover every metric for the pwrite and segmented rows (the io_uring row
    # is present only where the kernel supports it), and the contended-append
    # matrix must show the reservation ring not collapsing under threads.
    backend = [p for p in doc["points"] if "log flush backend" in p["matrix"]]
    assert backend, "no flush-backend points in BENCH_ablation_commit.json"
    backend_rows = {p["row"] for p in backend}
    assert {"sync pwrite file", "segmented"} <= backend_rows, \
        f"missing flush-backend rows: {backend_rows}"
    backend_metrics = {p["matrix"] for p in backend}
    assert len(backend_metrics) == 4, \
        f"expected commits/s, p99, wakeups and flushes matrices: {backend_metrics}"
    for p in backend:
        assert 0 <= p["value"] < 1e9, f"absurd flush-backend value {p}"
    tput = [p for p in backend if "commits/s" in p["matrix"]]
    assert tput and all(p["value"] > 0 for p in tput), \
        "flush-backend throughput cells must be positive"
    append = [p for p in doc["points"] if "contended log append" in p["matrix"]]
    append_rows = {p["row"] for p in append}
    assert {"1", "2", "4", "8"} <= append_rows, \
        f"missing contended-append thread rows: {append_rows}"
    assert all(p["value"] > 0 for p in append), \
        "contended-append cells must record appends"
    one = max(p["value"] for p in append if p["row"] == "1")
    many = max(p["value"] for p in append if p["row"] in ("4", "8"))
    assert many >= 0.5 * one, \
        f"append throughput collapsed under contention: 1t={one} multi={many}"
    print(f"  OK log-backend fields: {len(backend)} backend + "
          f"{len(append)} append points")
if doc["bench"] == "eviction_pressure":
    # The buffer-pool frame-lifecycle cost matrix: every coverage row must
    # be present in the throughput matrix, hit ratios must be sane
    # percentages, and the miss-heavy ("10%") cells must record real
    # eviction traffic (hit ratio well below 100).
    tput = [p for p in doc["points"] if "fetches/s" in p["matrix"]]
    ratios = [p for p in doc["points"] if "hit ratio" in p["matrix"]]
    assert tput, "no throughput points in BENCH_eviction_pressure.json"
    expected_rows = {"fits", "50%", "10%"}
    rows = {p["row"] for p in tput}
    assert rows == expected_rows, f"coverage rows {rows} != {expected_rows}"
    for p in tput:
        assert 0 < p["value"] < 1e9, f"absurd fetches/s value {p}"
    for p in ratios:
        assert 0 <= p["value"] <= 100, f"bad hit-ratio value {p}"
    miss_heavy = [p["value"] for p in ratios if p["row"] == "10%"]
    assert miss_heavy and all(v < 99 for v in miss_heavy), \
        f"10% coverage cells did not generate misses: {miss_heavy}"
    print(f"  OK eviction-pressure matrix: {len(tput)} cells")
if doc["bench"] == "recording_overhead":
    # The verification-hook cost matrix: every workload row must carry an
    # off and an on TPS cell, and the recording cells must have actually
    # recorded transactions (a zero count means the hook silently no-oped
    # and the overhead numbers are meaningless).
    tps = [p for p in doc["points"] if p["col"] in ("off", "on")]
    counts = [p for p in doc["points"] if p["col"] == "txns recorded"]
    expected_rows = {"mem-only 80/20", "50% cross 80/20", "50% cross 20/80",
                     "stor-heavy 80/20"}
    rows = {p["row"] for p in tps}
    assert rows == expected_rows, f"overhead rows {rows} != {expected_rows}"
    for row in expected_rows:
        cols = {p["col"] for p in tps if p["row"] == row}
        assert cols == {"off", "on"}, f"row {row} missing cells: {cols}"
    for p in tps:
        assert 0 < p["value"] < 1e9, f"absurd TPS value {p}"
    assert counts and all(p["value"] > 0 for p in counts), \
        f"recording cells recorded no transactions: {counts}"
    print(f"  OK recording-overhead matrix: {len(tps)} TPS cells")
if doc["bench"] == "server_tail_latency":
    # The open-loop network bench: every (connections x offered-rate) cell
    # must carry p50/p99/p999 commit-latency and achieved-throughput points,
    # the percentiles must be ordered (p50 <= p99 <= p999), and the server
    # must have actually committed transactions over the wire.
    by_metric = {}
    for p in doc["points"]:
        by_metric.setdefault(p["matrix"], []).append(p)
    metrics = sorted(by_metric)
    p50 = [m for m in metrics if "p50" in m]
    p99 = [m for m in metrics if "p99 " in m]
    p999 = [m for m in metrics if "p999" in m]
    tput = [m for m in metrics if "throughput" in m]
    assert p50 and p99 and p999 and tput, f"missing matrices: {metrics}"
    cells = {(p["row"], p["col"]) for p in by_metric[p50[0]]}
    assert cells, "no latency cells recorded"
    for m in (p99[0], p999[0], tput[0]):
        assert {(p["row"], p["col"]) for p in by_metric[m]} == cells, \
            f"matrix {m} cell set differs from p50's"
    def val(metric, cell):
        return next(p["value"] for p in by_metric[metric]
                    if (p["row"], p["col"]) == cell)
    for cell in cells:
        lo, hi, tail = val(p50[0], cell), val(p99[0], cell), val(p999[0], cell)
        assert 0 < lo <= hi <= tail < 60_000, \
            f"disordered percentiles at {cell}: {lo}/{hi}/{tail}"
        assert val(tput[0], cell) > 0, f"no commits at {cell}"
    print(f"  OK server-tail matrix: {len(cells)} cells x 4 metrics")
if doc["bench"] == "repl_lag":
    # The replication-lag bench: every (write-rate x reader-count) cell
    # must carry lag p50/p99, replica read throughput and achieved primary
    # write rate, with ordered percentiles and real traffic on both sides.
    by_metric = {}
    for p in doc["points"]:
        by_metric.setdefault(p["matrix"], []).append(p)
    metrics = sorted(by_metric)
    p50 = [m for m in metrics if "p50" in m]
    p99 = [m for m in metrics if "p99" in m]
    rtp = [m for m in metrics if "read throughput" in m]
    wtp = [m for m in metrics if "write rate" in m]
    assert p50 and p99 and rtp and wtp, f"missing matrices: {metrics}"
    cells = {(p["row"], p["col"]) for p in by_metric[p50[0]]}
    assert cells, "no lag cells recorded"
    for m in (p99[0], rtp[0], wtp[0]):
        assert {(p["row"], p["col"]) for p in by_metric[m]} == cells, \
            f"matrix {m} cell set differs from p50's"
    def rval(metric, cell):
        return next(p["value"] for p in by_metric[metric]
                    if (p["row"], p["col"]) == cell)
    for cell in cells:
        lo, hi = rval(p50[0], cell), rval(p99[0], cell)
        assert 0 < lo <= hi < 60_000, f"disordered lag percentiles {cell}"
        assert rval(rtp[0], cell) > 0, f"no replica reads at {cell}"
        assert rval(wtp[0], cell) > 0, f"no primary commits at {cell}"
    print(f"  OK repl-lag matrix: {len(cells)} cells x 4 metrics")
if doc["bench"] == "ablation_csr":
    # The lock-free read-path matrix feeds the reclamation perf trajectory
    # (docs/RECLAMATION.md); its hit-ratio rows must all be present with
    # sane Mops/s values.
    mops = [p for p in doc["points"] if "SelectSnapshot" in p["matrix"]]
    assert mops, "no read-path points in BENCH_ablation_csr.json"
    rows = {p["row"] for p in mops}
    expected_rows = {"100% hit", "90% hit", "50% hit"}
    assert rows == expected_rows, f"read-path rows {rows} != {expected_rows}"
    for p in mops:
        assert 0 < p["value"] < 1e4, f"absurd Mops/s value {p}"
    print(f"  OK read-path matrix: {len(mops)} points")
print(f"  OK {sys.argv[1]}: {len(doc['points'])} points")
EOF
  else
    echo "  wrote $json (python3 unavailable; skipped schema check)"
  fi
done
exit $fail
